package models

import (
	"symnet/internal/core"
	"symnet/internal/sefl"
)

// ipv4HeaderFields lists the (relative offset, size) pairs of the modeled
// IPv4 header; used to allocate/deallocate whole headers during
// encapsulation.
var ipv4HeaderFields = []struct {
	rel  int64
	size int
}{
	{16, 16},  // IPLen
	{32, 16},  // IPID
	{48, 16},  // IPFlags
	{64, 8},   // IPTTL
	{72, 8},   // IPProto
	{80, 16},  // IPChksum
	{96, 32},  // IPSrc
	{128, 32}, // IPDst
}

// etherHeaderFields lists the modeled Ethernet header fields.
var etherHeaderFields = []struct {
	rel  int64
	size int
}{
	{0, 48},  // EtherDst
	{48, 48}, // EtherSrc
	{96, 16}, // EtherProto
}

// StripEthernet returns code removing the L2 header (fields + tag), the
// first step of any L3 tunnel-ingress pipeline.
func StripEthernet() sefl.Instr {
	var is []sefl.Instr
	for _, f := range etherHeaderFields {
		is = append(is, sefl.Deallocate{LV: sefl.Hdr{Off: sefl.FromTag(sefl.TagL2, f.rel), Size: f.size}, Size: f.size})
	}
	is = append(is, sefl.DestroyTag{Name: sefl.TagL2})
	return sefl.Seq(is...)
}

// PushEthernet returns code adding a fresh L2 header directly below the
// current L3 tag, with the given addresses.
func PushEthernet(src, dst string, etherType uint64) sefl.Instr {
	is := []sefl.Instr{
		sefl.CreateTag{Name: sefl.TagL2, E: sefl.TagVal{Tag: sefl.TagL3, Rel: -int64(sefl.L2Bits)}},
	}
	is = append(is,
		sefl.Allocate{LV: sefl.EtherDst, Size: 48},
		sefl.Assign{LV: sefl.EtherDst, E: sefl.MAC(dst)},
		sefl.Allocate{LV: sefl.EtherSrc, Size: 48},
		sefl.Assign{LV: sefl.EtherSrc, E: sefl.MAC(src)},
		sefl.Allocate{LV: sefl.EtherProto, Size: 16},
		sefl.Assign{LV: sefl.EtherProto, E: sefl.CW(etherType, 16)},
	)
	return sefl.Seq(is...)
}

// ProtoIPIP is the IP protocol number for IP-in-IP encapsulation.
const ProtoIPIP = 4

// IPinIPEncap returns code performing IP-in-IP encapsulation: a new outer
// IPv4 header is allocated 160 bits below the inner one (the inner packet
// keeps its offsets, matching the paper's Fig. 6), with the given tunnel
// endpoints. The inner L3 tag is masked by the new one; the L4 tag is left
// untouched.
func IPinIPEncap(tunnelSrc, tunnelDst string) sefl.Instr {
	is := []sefl.Instr{
		// Remember the inner total length: the outer header carries
		// inner + 20 bytes, which is what surfaces MTU blackholes (§8.4).
		sefl.Allocate{LV: sefl.Meta{Name: "ipip-inner-len"}, Size: 16},
		sefl.Assign{LV: sefl.Meta{Name: "ipip-inner-len"}, E: sefl.Ref{LV: sefl.IPLen}},
		sefl.CreateTag{Name: sefl.TagL3, E: sefl.TagVal{Tag: sefl.TagL3, Rel: -int64(sefl.L3Bits)}},
	}
	for _, f := range ipv4HeaderFields {
		is = append(is, sefl.Allocate{LV: sefl.Hdr{Off: sefl.FromTag(sefl.TagL3, f.rel), Size: f.size}, Size: f.size})
	}
	is = append(is,
		sefl.Assign{LV: sefl.IPLen, E: sefl.Add{A: sefl.Ref{LV: sefl.Meta{Name: "ipip-inner-len"}}, B: sefl.C(20)}},
		sefl.Deallocate{LV: sefl.Meta{Name: "ipip-inner-len"}, Size: 16},
		sefl.Assign{LV: sefl.IPID, E: sefl.Symbolic{W: 16, Name: "outer-id"}},
		sefl.Assign{LV: sefl.IPFlags, E: sefl.CW(0, 16)},
		sefl.Assign{LV: sefl.IPTTL, E: sefl.CW(64, 8)},
		sefl.Assign{LV: sefl.IPProto, E: sefl.CW(ProtoIPIP, 8)},
		sefl.Assign{LV: sefl.IPChksum, E: sefl.CW(0, 16)},
		sefl.Assign{LV: sefl.IPSrc, E: sefl.IP(tunnelSrc)},
		sefl.Assign{LV: sefl.IPDst, E: sefl.IP(tunnelDst)},
	)
	return sefl.Seq(is...)
}

// IPinIPDecap returns code removing the outer IPv4 header: it checks the
// outer protocol is IP-in-IP, deallocates the outer fields and destroys the
// outer L3 tag, exposing the inner header again. Mis-layered packets fail
// with a memory-safety error, which is how the paper catches encapsulation
// bugs.
func IPinIPDecap() sefl.Instr {
	is := []sefl.Instr{
		sefl.Constrain{C: sefl.Eq(sefl.Ref{LV: sefl.IPProto}, sefl.C(ProtoIPIP))},
	}
	for _, f := range ipv4HeaderFields {
		is = append(is, sefl.Deallocate{LV: sefl.Hdr{Off: sefl.FromTag(sefl.TagL3, f.rel), Size: f.size}, Size: f.size})
	}
	is = append(is, sefl.DestroyTag{Name: sefl.TagL3})
	return sefl.Seq(is...)
}

// TunnelEntry installs an IP-in-IP tunnel-entry element: Ethernet is
// stripped, the outer IP header pushed, and a fresh Ethernet header added.
func TunnelEntry(e *core.Element, tunnelSrc, tunnelDst, macSrc, macDst string) {
	e.SetInCode(core.WildcardPort, sefl.Seq(
		StripEthernet(),
		IPinIPEncap(tunnelSrc, tunnelDst),
		PushEthernet(macSrc, macDst, sefl.EtherTypeIPv4),
		sefl.Forward{Port: 0},
	))
}

// TunnelExit installs the matching tunnel-exit element.
func TunnelExit(e *core.Element, macSrc, macDst string) {
	e.SetInCode(core.WildcardPort, sefl.Seq(
		StripEthernet(),
		IPinIPDecap(),
		PushEthernet(macSrc, macDst, sefl.EtherTypeIPv4),
		sefl.Forward{Port: 0},
	))
}

// --- VLAN tagging ---
//
// The VLAN shim occupies the 32 bits directly beneath the network header.
// Because the Ethernet header of an untagged packet ends exactly at L3,
// inserting a shim requires re-framing: strip Ethernet, push the shim, push
// a new Ethernet header below it — exactly how switching hardware rewrites
// frames.

// VLANWrap returns code tagging the frame with a VLAN id: the inner
// ethertype is preserved in the shim, and the new outer Ethernet header
// carries ethertype 0x8100.
func VLANWrap(vlan uint64, macSrc, macDst string) sefl.Instr {
	return sefl.Seq(
		// Remember the inner ethertype before the L2 header disappears.
		sefl.Allocate{LV: sefl.Meta{Name: "vlan-inner-proto"}, Size: 16},
		sefl.Assign{LV: sefl.Meta{Name: "vlan-inner-proto"}, E: sefl.Ref{LV: sefl.EtherProto}},
		StripEthernet(),
		sefl.CreateTag{Name: sefl.TagVLAN, E: sefl.TagVal{Tag: sefl.TagL3, Rel: -int64(sefl.VLANBits)}},
		sefl.Allocate{LV: sefl.VlanID, Size: 16},
		sefl.Assign{LV: sefl.VlanID, E: sefl.CW(vlan, 16)},
		sefl.Allocate{LV: sefl.VlanProto, Size: 16},
		sefl.Assign{LV: sefl.VlanProto, E: sefl.Ref{LV: sefl.Meta{Name: "vlan-inner-proto"}}},
		sefl.Deallocate{LV: sefl.Meta{Name: "vlan-inner-proto"}, Size: 16},
		// New Ethernet header below the shim, marked as VLAN-tagged.
		sefl.CreateTag{Name: sefl.TagL2, E: sefl.TagVal{Tag: sefl.TagVLAN, Rel: -int64(sefl.L2Bits)}},
		sefl.Allocate{LV: sefl.EtherDst, Size: 48},
		sefl.Assign{LV: sefl.EtherDst, E: sefl.MAC(macDst)},
		sefl.Allocate{LV: sefl.EtherSrc, Size: 48},
		sefl.Assign{LV: sefl.EtherSrc, E: sefl.MAC(macSrc)},
		sefl.Allocate{LV: sefl.EtherProto, Size: 16},
		sefl.Assign{LV: sefl.EtherProto, E: sefl.CW(sefl.EtherTypeVLAN, 16)},
	)
}

// VLANUnwrap returns code removing the VLAN shim. It fails when the frame
// is not actually tagged — the behaviour that exposes the paper's §8.4
// "missing VLAN tagging" bug, where R1 drops frames the proxy forgot to
// re-tag.
func VLANUnwrap(macSrc, macDst string) sefl.Instr {
	return sefl.Seq(
		sefl.Constrain{C: sefl.Eq(sefl.Ref{LV: sefl.EtherProto}, sefl.C(uint64(sefl.EtherTypeVLAN)))},
		StripEthernet(),
		// Recover the inner ethertype from the shim, then drop the shim.
		sefl.Allocate{LV: sefl.Meta{Name: "vlan-inner-proto"}, Size: 16},
		sefl.Assign{LV: sefl.Meta{Name: "vlan-inner-proto"}, E: sefl.Ref{LV: sefl.VlanProto}},
		sefl.Deallocate{LV: sefl.VlanProto, Size: 16},
		sefl.Deallocate{LV: sefl.VlanID, Size: 16},
		sefl.DestroyTag{Name: sefl.TagVLAN},
		// Re-frame below L3 with the recovered ethertype.
		sefl.CreateTag{Name: sefl.TagL2, E: sefl.TagVal{Tag: sefl.TagL3, Rel: -int64(sefl.L2Bits)}},
		sefl.Allocate{LV: sefl.EtherDst, Size: 48},
		sefl.Assign{LV: sefl.EtherDst, E: sefl.MAC(macDst)},
		sefl.Allocate{LV: sefl.EtherSrc, Size: 48},
		sefl.Assign{LV: sefl.EtherSrc, E: sefl.MAC(macSrc)},
		sefl.Allocate{LV: sefl.EtherProto, Size: 16},
		sefl.Assign{LV: sefl.EtherProto, E: sefl.Ref{LV: sefl.Meta{Name: "vlan-inner-proto"}}},
		sefl.Deallocate{LV: sefl.Meta{Name: "vlan-inner-proto"}, Size: 16},
	)
}
