package models

import (
	"fmt"

	"symnet/internal/core"
	"symnet/internal/sefl"
	"symnet/internal/tables"
)

// GroupRoutes splits compiled routes by output port, preserving the
// most-specific-first order within each port — the grouping the Egress
// style's per-port guards are built from.
func GroupRoutes(cs []tables.CompiledRoute) map[int][]tables.CompiledRoute {
	return groupRoutes(cs)
}

// Router installs an IP longest-prefix-match router model onto e.
//
// Basic: one If per prefix, most-specific first (branching factor = number
// of prefixes — the naive model the paper shows is intractable for core
// routers).
//
// Ingress: per-port If-chain where each route carries "!more_specific &
// prefix" exclusion constraints so grouping preserves LPM semantics.
//
// Egress: fork to all used ports, with each output port constraining the
// disjunction of its routes (optimal branching AND minimal constraints —
// Table 2's winner).
func Router(e *core.Element, fib tables.FIB, style Style) error {
	if len(fib) == 0 {
		return fmt.Errorf("models: router %s: empty FIB", e.Name)
	}
	ports := fib.Ports()
	if max := ports[len(ports)-1]; max >= e.NumOut {
		return fmt.Errorf("models: router %s: FIB uses port %d but element has %d output ports", e.Name, max, e.NumOut)
	}
	dst := sefl.Ref{LV: sefl.IPDst}
	compiled := tables.CompileLPM(fib)
	switch style {
	case Basic:
		// compiled is sorted most-specific-first; ordered Ifs implement LPM
		// without exclusion constraints, at the cost of per-prefix branching.
		code := sefl.Instr(sefl.Fail{Msg: "no route"})
		for i := len(compiled) - 1; i >= 0; i-- {
			r := compiled[i]
			code = sefl.If{
				C:    sefl.Prefix{E: dst, Value: r.Prefix, Len: r.Len},
				Then: sefl.Forward{Port: r.Port},
				Else: code,
			}
		}
		e.SetInCode(core.WildcardPort, code)
	case Ingress:
		perPort := groupRoutes(compiled)
		code := sefl.Instr(sefl.Fail{Msg: "no route"})
		for i := len(ports) - 1; i >= 0; i-- {
			p := ports[i]
			code = sefl.If{
				C:    routeDisjunction(dst, perPort[p]),
				Then: sefl.Forward{Port: p},
				Else: code,
			}
		}
		e.SetInCode(core.WildcardPort, code)
	case Egress:
		perPort := groupRoutes(compiled)
		e.SetInCode(core.WildcardPort, sefl.Fork{Ports: ports})
		for _, p := range ports {
			e.SetOutCode(p, sefl.Constrain{C: routeDisjunction(dst, perPort[p])})
		}
	default:
		return fmt.Errorf("models: unknown router style %v", style)
	}
	return nil
}

// RouterEgressGuard returns the output-port guard instruction the Egress
// router style installs for one port's compiled routes — exported so an
// incremental updater can rebuild a single port's guard after a FIB delta
// without re-running the whole model construction.
func RouterEgressGuard(rs []tables.CompiledRoute) sefl.Instr {
	return sefl.Constrain{C: routeDisjunction(sefl.Ref{LV: sefl.IPDst}, rs)}
}

// groupRoutes splits compiled routes by output port, preserving the
// most-specific-first order within each port.
func groupRoutes(cs []tables.CompiledRoute) map[int][]tables.CompiledRoute {
	out := make(map[int][]tables.CompiledRoute)
	for _, c := range cs {
		out[c.Port] = append(out[c.Port], c)
	}
	return out
}

// routeDisjunction builds OR over "prefix & !exclusion1 & !exclusion2 ..."
// for a port's routes.
func routeDisjunction(dst sefl.Expr, rs []tables.CompiledRoute) sefl.Cond {
	cs := make([]sefl.Cond, len(rs))
	for i, r := range rs {
		match := sefl.Cond(sefl.Prefix{E: dst, Value: r.Prefix, Len: r.Len})
		if len(r.Exclusions) > 0 {
			conj := make([]sefl.Cond, 0, len(r.Exclusions)+1)
			conj = append(conj, match)
			for _, ex := range r.Exclusions {
				conj = append(conj, sefl.NotC(sefl.Prefix{E: dst, Value: ex.Prefix, Len: ex.Len}))
			}
			match = sefl.AndC(conj...)
		}
		cs[i] = match
	}
	if len(cs) == 1 {
		return cs[0]
	}
	return sefl.OrC(cs...)
}
