package models

import (
	"strings"
	"testing"

	"symnet/internal/core"
	"symnet/internal/sefl"
	"symnet/internal/tables"
	"symnet/internal/verify"
)

func sinkEl(net *core.Network, name string) {
	net.AddElement(name, "sink", 1, 0).SetInCode(0, sefl.NoOp{})
}

func testMACTable() tables.MACTable {
	return tables.MACTable{
		{MAC: 0x0000aa0001, VLAN: 1, Port: 0},
		{MAC: 0x0000aa0002, VLAN: 1, Port: 0},
		{MAC: 0x0000bb0001, VLAN: 1, Port: 1},
		{MAC: 0x0000cc0001, VLAN: 1, Port: 2},
		{MAC: 0x0000cc0002, VLAN: 1, Port: 2},
		{MAC: 0x0000cc0003, VLAN: 1, Port: 2},
	}
}

func runSwitch(t *testing.T, style Style) *core.Result {
	t.Helper()
	net := core.NewNetwork()
	sw := net.AddElement("SW", "switch", 1, 3)
	if err := Switch(sw, testMACTable(), style); err != nil {
		t.Fatal(err)
	}
	for i, n := range []string{"H0", "H1", "H2"} {
		sinkEl(net, n)
		net.MustLink("SW", i, n, 0)
	}
	res, err := core.Run(net, core.PortRef{Elem: "SW", Port: 0}, sefl.NewEthernetPacket(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSwitchStylesAgreeOnForwarding(t *testing.T) {
	for _, style := range []Style{Basic, Ingress, Egress} {
		res := runSwitch(t, style)
		// Every style must deliver to all three hosts.
		for i, host := range []string{"H0", "H1", "H2"} {
			paths := res.DeliveredAt(host, 0)
			if len(paths) == 0 {
				t.Fatalf("style %v: no path to %s", style, host)
			}
			// The H2 paths must allow exactly the three cc MACs.
			if i == 2 {
				var total uint64
				for _, p := range paths {
					d, err := verify.FieldDomain(p, sefl.EtherDst)
					if err != nil {
						t.Fatal(err)
					}
					total += d.Size()
				}
				if total != 3 {
					t.Fatalf("style %v: H2 admits %d MACs, want 3", style, total)
				}
			}
		}
	}
}

func TestSwitchPathCounts(t *testing.T) {
	// Basic branches per MAC entry (6 delivered paths + unknown-MAC fail);
	// Ingress and Egress branch per port (3 delivered paths).
	if res := runSwitch(t, Basic); res.Stats.Delivered != 6 {
		t.Fatalf("basic delivered = %d, want 6", res.Stats.Delivered)
	}
	for _, style := range []Style{Ingress, Egress} {
		if res := runSwitch(t, style); res.Stats.Delivered != 3 {
			t.Fatalf("%v delivered = %d, want 3", style, res.Stats.Delivered)
		}
	}
}

func TestSwitchUnknownMACFails(t *testing.T) {
	for _, style := range []Style{Basic, Ingress} {
		res := runSwitch(t, style)
		var unknown int
		for _, p := range res.ByStatus(core.Failed) {
			if strings.Contains(p.FailMsg, "Mac unknown") {
				unknown++
			}
		}
		if unknown != 1 {
			t.Fatalf("style %v: unknown-MAC failures = %d, want 1", style, unknown)
		}
	}
}

// paperFIB is the overlapping 4-route table from §7 used to motivate LPM
// compilation.
func paperFIB() tables.FIB {
	return tables.FIB{
		{Prefix: sefl.IPToNumber("192.168.0.1"), Len: 32, Port: 0},
		{Prefix: sefl.IPToNumber("10.0.0.0"), Len: 8, Port: 0},
		{Prefix: sefl.IPToNumber("192.168.0.0"), Len: 24, Port: 1},
		{Prefix: sefl.IPToNumber("10.10.0.1"), Len: 32, Port: 1},
	}
}

func runRouter(t *testing.T, fib tables.FIB, style Style, nOut int) *core.Result {
	t.Helper()
	net := core.NewNetwork()
	r := net.AddElement("R", "router", 1, nOut)
	if err := Router(r, fib, style); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nOut; i++ {
		name := "H" + string(rune('0'+i))
		sinkEl(net, name)
		net.MustLink("R", i, name, 0)
	}
	res, err := core.Run(net, core.PortRef{Elem: "R", Port: 0}, sefl.NewIPPacket(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRouterLPMSemantics(t *testing.T) {
	// 10.10.0.1 is covered by 10/8 (port 0) but must go to port 1 (its /32).
	host := sefl.IPToNumber("10.10.0.1")
	for _, style := range []Style{Basic, Ingress, Egress} {
		res := runRouter(t, paperFIB(), style, 2)
		toH0 := res.DeliveredAt("H0", 0)
		toH1 := res.DeliveredAt("H1", 0)
		if len(toH0) == 0 || len(toH1) == 0 {
			t.Fatalf("style %v: H0=%d H1=%d paths", style, len(toH0), len(toH1))
		}
		h0Sees, h1Sees := false, false
		for _, p := range toH0 {
			d, err := verify.FieldDomain(p, sefl.IPDst)
			if err != nil {
				t.Fatal(err)
			}
			if d.Contains(host) {
				h0Sees = true
			}
		}
		for _, p := range toH1 {
			d, err := verify.FieldDomain(p, sefl.IPDst)
			if err != nil {
				t.Fatal(err)
			}
			if d.Contains(host) {
				h1Sees = true
			}
		}
		if h0Sees {
			t.Fatalf("style %v: 10.10.0.1 wrongly reachable via port 0 (LPM violated)", style)
		}
		if !h1Sees {
			t.Fatalf("style %v: 10.10.0.1 not reachable via port 1", style)
		}
	}
}

func TestRouterPathCounts(t *testing.T) {
	// Basic: one path per prefix (4) + no-route; grouped styles: one per
	// port (2) + no-route for ingress.
	res := runRouter(t, paperFIB(), Basic, 2)
	if res.Stats.Delivered != 4 {
		t.Fatalf("basic delivered = %d, want 4", res.Stats.Delivered)
	}
	for _, style := range []Style{Ingress, Egress} {
		res := runRouter(t, paperFIB(), style, 2)
		if res.Stats.Delivered != 2 {
			t.Fatalf("%v delivered = %d, want 2 (one per port)", style, res.Stats.Delivered)
		}
	}
}

func TestNATForwardAndReverse(t *testing.T) {
	net := core.NewNetwork()
	nat := net.AddElement("NAT", "nat", 2, 2)
	NAT(nat, DefaultNATConfig("141.85.37.2"))
	// Bounce: out 0 -> mirror -> in 1; out 1 -> sink.
	mir := net.AddElement("MIR", "mirror", 1, 1)
	mir.SetInCode(0, sefl.Seq(
		sefl.Allocate{LV: sefl.Meta{Name: "t"}, Size: 32},
		sefl.Assign{LV: sefl.Meta{Name: "t"}, E: sefl.Ref{LV: sefl.IPSrc}},
		sefl.Assign{LV: sefl.IPSrc, E: sefl.Ref{LV: sefl.IPDst}},
		sefl.Assign{LV: sefl.IPDst, E: sefl.Ref{LV: sefl.Meta{Name: "t"}}},
		sefl.Deallocate{LV: sefl.Meta{Name: "t"}, Size: 32},
		sefl.Allocate{LV: sefl.Meta{Name: "tp"}, Size: 16},
		sefl.Assign{LV: sefl.Meta{Name: "tp"}, E: sefl.Ref{LV: sefl.TcpSrc}},
		sefl.Assign{LV: sefl.TcpSrc, E: sefl.Ref{LV: sefl.TcpDst}},
		sefl.Assign{LV: sefl.TcpDst, E: sefl.Ref{LV: sefl.Meta{Name: "tp"}}},
		sefl.Deallocate{LV: sefl.Meta{Name: "tp"}, Size: 16},
		sefl.Forward{Port: 0},
	))
	sinkEl(net, "IN")
	net.MustLink("NAT", 0, "MIR", 0)
	net.MustLink("MIR", 0, "NAT", 1)
	net.MustLink("NAT", 1, "IN", 0)
	res, err := core.Run(net, core.PortRef{Elem: "NAT", Port: 0}, sefl.NewTCPPacket(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	paths := res.DeliveredAt("IN", 0)
	if len(paths) != 1 {
		t.Fatalf("want 1 path through NAT and back, got %d", len(paths))
	}
	p := paths[0]
	// The restored destination port must be the original source port: the
	// first value TcpSrc ever held equals the final value of TcpDst.
	l4, _ := p.Mem.Tag(sefl.TagL4)
	srcHist, err := p.Mem.HdrHistory(l4+0, 16)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := verify.FieldValue(p, sefl.TcpDst)
	if err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(srcHist[0]) {
		t.Fatalf("restored TcpDst %v != original TcpSrc %v", dst, srcHist[0])
	}
	// The mapped port (visible mid-path in TcpDst's history, where the
	// mirror placed it) must be range-constrained to the NAT's port pool.
	dstHist, err := p.Mem.HdrHistory(l4+16, 16)
	if err != nil {
		t.Fatal(err)
	}
	mapped := dstHist[len(dstHist)-2] // value before the final restoration
	mdom := p.Ctx.Domain(mapped)
	if mdom.Contains(100) {
		t.Fatalf("mapped port domain %v must exclude ports < 1024", mdom)
	}
	if mn, _ := mdom.Min(); mn != 1024 {
		t.Fatalf("mapped port domain %v must start at 1024", mdom)
	}
}

func TestTunnelPayloadInvariance(t *testing.T) {
	// §2's motivating example: A -> E1 -> E2 -> D2 -> D1 -> B with two
	// nested IP-in-IP tunnels. Packet contents must be invariant end to end
	// — the property HSA cannot capture and SymNet proves directly.
	net := core.NewNetwork()
	for _, n := range []string{"E1", "E2"} {
		e := net.AddElement(n, "encap", 1, 1)
		TunnelEntry(e, "1.0.0."+string(rune('1'+len(n)%2)), "2.0.0.1", "00:00:00:00:00:01", "00:00:00:00:00:02")
	}
	for _, n := range []string{"D2", "D1"} {
		e := net.AddElement(n, "decap", 1, 1)
		TunnelExit(e, "00:00:00:00:00:03", "00:00:00:00:00:04")
	}
	sinkEl(net, "B")
	net.MustLink("E1", 0, "E2", 0)
	net.MustLink("E2", 0, "D2", 0)
	net.MustLink("D2", 0, "D1", 0)
	net.MustLink("D1", 0, "B", 0)
	res, err := core.Run(net, core.PortRef{Elem: "E1", Port: 0}, sefl.NewTCPPacket(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	paths := res.DeliveredAt("B", 0)
	if len(paths) != 1 {
		for _, p := range res.Paths {
			t.Logf("path %d %v at %v: %s", p.ID, p.Status, p.Last(), p.FailMsg)
		}
		t.Fatalf("want 1 path to B, got %d", len(paths))
	}
	p := paths[0]
	// Inner IP and TCP fields must be untouched.
	for _, f := range []sefl.Hdr{sefl.IPSrc, sefl.IPDst, sefl.TcpSrc, sefl.TcpDst, sefl.TcpPayload} {
		inv, err := verify.FieldInvariant(p, f)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if !inv {
			t.Fatalf("%s must be invariant across the tunnel", f.Name)
		}
	}
	// Exactly two encapsulation layers were added and removed: final stack
	// depth of the (inner) L3 offset region must be 1.
	if d := p.Mem.HdrStackDepth(112 + 96); d != 1 {
		t.Fatalf("inner IPSrc stack depth %d", d)
	}
}

func TestTunnelDecapWithoutEncapFails(t *testing.T) {
	net := core.NewNetwork()
	d := net.AddElement("D", "decap", 1, 1)
	TunnelExit(d, "00:00:00:00:00:03", "00:00:00:00:00:04")
	sinkEl(net, "B")
	net.MustLink("D", 0, "B", 0)
	res, err := core.Run(net, core.PortRef{Elem: "D", Port: 0}, sefl.NewTCPPacket(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeliveredAt("B", 0)) != 0 {
		t.Fatal("decapsulating a non-tunneled packet must not succeed")
	}
}

func TestEncryptionOpacityAndRecovery(t *testing.T) {
	// §7: after encryption a snooping box sees a fresh symbol, not the
	// payload; decryption with the right key restores the original.
	const key = 0xfeedface
	net := core.NewNetwork()
	enc := net.AddElement("ENC", "encrypt", 1, 1)
	EncryptTunnel(enc, key)
	snoop := net.AddElement("SNOOP", "monitor", 1, 1)
	snoop.SetInCode(0, sefl.Forward{Port: 0})
	dec := net.AddElement("DEC", "decrypt", 1, 1)
	DecryptTunnel(dec, key)
	sinkEl(net, "B")
	net.MustLink("ENC", 0, "SNOOP", 0)
	net.MustLink("SNOOP", 0, "DEC", 0)
	net.MustLink("DEC", 0, "B", 0)
	res, err := core.Run(net, core.PortRef{Elem: "ENC", Port: 0}, sefl.NewTCPPacket(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	paths := res.DeliveredAt("B", 0)
	if len(paths) != 1 {
		t.Fatalf("want 1 path, got %d", len(paths))
	}
	p := paths[0]
	inv, err := verify.FieldInvariant(p, sefl.TcpPayload)
	if err != nil {
		t.Fatal(err)
	}
	if !inv {
		t.Fatal("payload must be restored after decryption")
	}
}

func TestDecryptionWrongKeyFails(t *testing.T) {
	net := core.NewNetwork()
	enc := net.AddElement("ENC", "encrypt", 1, 1)
	EncryptTunnel(enc, 111)
	dec := net.AddElement("DEC", "decrypt", 1, 1)
	DecryptTunnel(dec, 222)
	sinkEl(net, "B")
	net.MustLink("ENC", 0, "DEC", 0)
	net.MustLink("DEC", 0, "B", 0)
	res, err := core.Run(net, core.PortRef{Elem: "ENC", Port: 0}, sefl.NewTCPPacket(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeliveredAt("B", 0)) != 0 {
		t.Fatal("wrong key must not decrypt")
	}
	if res.Stats.Failed != 1 {
		t.Fatalf("stats %+v", res.Stats)
	}
}

func TestVLANWrapUnwrap(t *testing.T) {
	net := core.NewNetwork()
	tagger := net.AddElement("TAG", "vlan", 1, 1)
	tagger.SetInCode(0, sefl.Seq(VLANWrap(302, "00:00:00:00:00:01", "00:00:00:00:00:02"), sefl.Forward{Port: 0}))
	untag := net.AddElement("UNTAG", "vlan", 1, 1)
	untag.SetInCode(0, sefl.Seq(VLANUnwrap("00:00:00:00:00:03", "00:00:00:00:00:04"), sefl.Forward{Port: 0}))
	sinkEl(net, "B")
	net.MustLink("TAG", 0, "UNTAG", 0)
	net.MustLink("UNTAG", 0, "B", 0)
	res, err := core.Run(net, core.PortRef{Elem: "TAG", Port: 0}, sefl.NewTCPPacket(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	paths := res.DeliveredAt("B", 0)
	if len(paths) != 1 {
		for _, p := range res.Paths {
			t.Logf("path %d %v at %v: %s", p.ID, p.Status, p.Last(), p.FailMsg)
		}
		t.Fatalf("want 1 path, got %d", len(paths))
	}
	// After unwrap, EtherProto is IPv4 again and the VLAN tag is gone.
	v, err := verify.FieldValue(paths[0], sefl.EtherProto)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := v.ConstVal(); got != sefl.EtherTypeIPv4 {
		t.Fatalf("EtherProto after unwrap = %#x", got)
	}
	if _, ok := paths[0].Mem.Tag(sefl.TagVLAN); ok {
		t.Fatal("VLAN tag must be destroyed")
	}
}

func TestVLANUnwrapUntaggedFails(t *testing.T) {
	// The §8.4 bug: pushing untagged frames at a box expecting VLAN tags.
	net := core.NewNetwork()
	untag := net.AddElement("UNTAG", "vlan", 1, 1)
	untag.SetInCode(0, sefl.Seq(VLANUnwrap("00:00:00:00:00:03", "00:00:00:00:00:04"), sefl.Forward{Port: 0}))
	sinkEl(net, "B")
	net.MustLink("UNTAG", 0, "B", 0)
	res, err := core.Run(net, core.PortRef{Elem: "UNTAG", Port: 0}, sefl.NewTCPPacket(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeliveredAt("B", 0)) != 0 {
		t.Fatal("untagged frame must be dropped by VLAN unwrap")
	}
}

func TestSeqRandomizer(t *testing.T) {
	net := core.NewNetwork()
	fw := net.AddElement("FW", "seqrand", 2, 2)
	SeqRandomizer(fw, 0, 1, 0, 1)
	mir := net.AddElement("MIR", "mirror", 1, 1)
	mir.SetInCode(0, sefl.Seq(
		// Acknowledge the observed sequence number.
		sefl.Assign{LV: sefl.TcpAck, E: sefl.Ref{LV: sefl.TcpSeq}},
		sefl.Forward{Port: 0},
	))
	sinkEl(net, "IN")
	net.MustLink("FW", 0, "MIR", 0)
	net.MustLink("MIR", 0, "FW", 1)
	net.MustLink("FW", 1, "IN", 0)
	res, err := core.Run(net, core.PortRef{Elem: "FW", Port: 0}, sefl.NewTCPPacket(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	paths := res.DeliveredAt("IN", 0)
	if len(paths) != 1 {
		t.Fatalf("want 1 path, got %d", len(paths))
	}
	// The inside host receives an ACK of its *original* sequence number.
	p := paths[0]
	ack, err := verify.FieldValue(p, sefl.TcpAck)
	if err != nil {
		t.Fatal(err)
	}
	seqHist, err := p.Mem.HdrHistory(112+160+32, 32) // TcpSeq absolute offset
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Equal(seqHist[0]) {
		t.Fatalf("restored ack %v != original seq %v", ack, seqHist[0])
	}
}
