package datasets

import (
	"fmt"

	"symnet/internal/core"
	"symnet/internal/sefl"
)

// ForkHeavy builds the fork-heavy state-replication workload used by the
// BenchmarkForkHeavy* benchmarks and the symbench "forkheavy" experiment:
// inject -> pre0..pre{prefix-1} -> f0..f{depth-1} -> sink, where each pre
// element adds one metadata binding plus one constraint (growing per-path
// state without branching) and each f element forks the packet through fan
// output ports. The workload isolates the cost of path replication and of
// per-instruction engine overhead: fan^depth paths each drag prefix metadata
// bindings and constraints through every fork.
func ForkHeavy(prefix, depth, fan int) (*core.Network, core.PortRef) {
	net := core.NewNetwork()
	for i := 0; i < prefix; i++ {
		e := net.AddElement(fmt.Sprintf("pre%d", i), "chain", 1, 1)
		m := sefl.Meta{Name: fmt.Sprintf("m%d", i)}
		e.SetInCode(0, sefl.Seq(
			sefl.Allocate{LV: m, Size: 32},
			sefl.Assign{LV: m, E: sefl.Symbolic{W: 32, Name: m.Name}},
			sefl.Constrain{C: sefl.Ge(sefl.Ref{LV: m}, sefl.C(uint64(i%7)))},
			sefl.Assign{LV: sefl.IPTTL, E: sefl.Sub{A: sefl.Ref{LV: sefl.IPTTL}, B: sefl.C(1)}},
			sefl.Forward{Port: 0},
		))
	}
	for i := 0; i < depth; i++ {
		e := net.AddElement(fmt.Sprintf("f%d", i), "fork", 1, fan)
		ports := make([]int, fan)
		for p := range ports {
			ports[p] = p
		}
		e.SetInCode(0, sefl.Seq(
			sefl.Constrain{C: sefl.Ne(sefl.Ref{LV: sefl.IPSrc}, sefl.C(uint64(i)))},
			sefl.Assign{LV: sefl.IPTTL, E: sefl.Sub{A: sefl.Ref{LV: sefl.IPTTL}, B: sefl.C(1)}},
			sefl.Fork{Ports: ports},
		))
	}
	sinkEl := net.AddElement("sink", "sink", 1, 0)
	sinkEl.SetInCode(0, sefl.NoOp{})
	hop := func(from string, to string) {
		net.MustLink(from, 0, to, 0)
	}
	for i := 0; i+1 < prefix; i++ {
		hop(fmt.Sprintf("pre%d", i), fmt.Sprintf("pre%d", i+1))
	}
	first := "sink"
	if depth > 0 {
		first = "f0"
	}
	if prefix > 0 {
		hop(fmt.Sprintf("pre%d", prefix-1), first)
	}
	for i := 0; i < depth; i++ {
		next := "sink"
		if i+1 < depth {
			next = fmt.Sprintf("f%d", i+1)
		}
		for p := 0; p < fan; p++ {
			net.MustLink(fmt.Sprintf("f%d", i), p, next, 0)
		}
	}
	inject := core.PortRef{Elem: "pre0", Port: 0}
	if prefix == 0 {
		inject = core.PortRef{Elem: first, Port: 0}
	}
	return net, inject
}
