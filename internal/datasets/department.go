package datasets

import (
	"fmt"
	"strings"

	"symnet/internal/asa"
	"symnet/internal/core"
	"symnet/internal/models"
	"symnet/internal/sefl"
	"symnet/internal/tables"
)

// Department reproduces the CS department network of Fig. 11 / §8.5: hosts
// behind access switches, an aggregation switch, the M2 master switch, a
// Cisco ASA as the first IP hop, the M1 department router and the exit
// router, plus the management VLAN (192.168.137.0/24) with the cluster's
// "hole" server.
//
// Simplification (documented in DESIGN.md): VLAN tags are not carried
// hop-by-hop through the L2 segment; VLAN separation is enforced at the
// ASA boundary and the management network is modeled as its own L2 leg.
// The §8.5 findings this generator reproduces: office→Internet via the
// ASA, TCP-options tampering (SACK disabled for HTTP, MPTCP stripped),
// the inbound management-VLAN hole via M1, cluster→switch management
// access, and the fix.
type Department struct {
	Net *core.Network
	// Fixed selects the corrected static routes (the admins' fix).
	Fixed bool

	AccessSwitches []string
	MACEntries     int
	RouteEntries   int

	// MACTables and FIBs hold every learned-table element's rule state by
	// element name (access switches, agg, m2 / m1, exit) — what an
	// incremental verification service (internal/churn) registers so it can
	// absorb rule deltas against the same tables the models were built from.
	MACTables map[string]tables.MACTable
	FIBs      map[string]tables.FIB

	// Well-known addresses.
	ASAMac   string
	PublicIP string
	MgmtCIDR string
}

// DepartmentConfig sizes the topology.
type DepartmentConfig struct {
	NumAccessSwitches int // paper: 15
	HostsPerSwitch    int // MACs per access switch; paper total ~6000
	Routes            int // router FIB size; paper: ~400
	Fixed             bool
	Seed              int64
}

// DefaultDepartment mirrors the paper's scale.
func DefaultDepartment() DepartmentConfig {
	return DepartmentConfig{NumAccessSwitches: 15, HostsPerSwitch: 400, Routes: 400, Seed: 11}
}

// HeavyDepartment doubles the paper's switch count and MAC/route tables.
// The multicore CI gate uses it (symbench -heavy) so per-job compute
// dominates distributed spawn and setup-encode overhead, making wall-clock
// speedup assertions meaningful on small runners.
func HeavyDepartment() DepartmentConfig {
	return DepartmentConfig{NumAccessSwitches: 60, HostsPerSwitch: 400, Routes: 800, Seed: 11}
}

// hostMAC derives a deterministic host MAC.
func hostMAC(sw, host int) uint64 {
	return 0x020000000000 | uint64(sw)<<16 | uint64(host)
}

// NewDepartment builds the network.
func NewDepartment(cfg DepartmentConfig) *Department {
	d := &Department{
		Net:       core.NewNetwork(),
		Fixed:     cfg.Fixed,
		ASAMac:    "02:aa:00:00:00:01",
		PublicIP:  "141.85.37.2",
		MgmtCIDR:  "192.168.137.0/24",
		MACTables: make(map[string]tables.MACTable),
		FIBs:      make(map[string]tables.FIB),
	}
	net := d.Net
	asaMACNum := sefl.MACToNumber(d.ASAMac)

	// --- Access switches: host MACs on ports 1..n, upstream on port 0.
	for s := 0; s < cfg.NumAccessSwitches; s++ {
		name := fmt.Sprintf("asw%d", s)
		d.AccessSwitches = append(d.AccessSwitches, name)
		var tbl tables.MACTable
		hostPorts := 4 // group hosts onto a few physical ports
		for h := 0; h < cfg.HostsPerSwitch; h++ {
			tbl = append(tbl, tables.MACEntry{MAC: hostMAC(s, h), VLAN: 302, Port: 1 + h%hostPorts})
		}
		tbl = append(tbl, tables.MACEntry{MAC: asaMACNum, VLAN: 302, Port: 0})
		d.MACEntries += len(tbl)
		e := net.AddElement(name, "switch", 1+hostPorts, 1+hostPorts)
		if err := models.Switch(e, tbl, models.Egress); err != nil {
			panic(err)
		}
		d.MACTables[name] = tbl
	}

	// --- Aggregation switch: port s per access switch, port N upstream.
	nA := cfg.NumAccessSwitches
	var aggTbl tables.MACTable
	for s := 0; s < nA; s++ {
		for h := 0; h < cfg.HostsPerSwitch; h += 7 { // a subset is learned
			aggTbl = append(aggTbl, tables.MACEntry{MAC: hostMAC(s, h), VLAN: 302, Port: s})
		}
	}
	aggTbl = append(aggTbl, tables.MACEntry{MAC: asaMACNum, VLAN: 302, Port: nA})
	d.MACEntries += len(aggTbl)
	agg := net.AddElement("agg", "switch", nA+1, nA+1)
	if err := models.Switch(agg, aggTbl, models.Egress); err != nil {
		panic(err)
	}
	d.MACTables["agg"] = aggTbl

	// --- M2 master switch: agg on port 0, ASA on port 1, cluster on 2,
	// management leg on 3.
	var m2Tbl tables.MACTable
	for s := 0; s < nA; s++ {
		m2Tbl = append(m2Tbl, tables.MACEntry{MAC: hostMAC(s, 0), VLAN: 302, Port: 0})
	}
	m2Tbl = append(m2Tbl,
		tables.MACEntry{MAC: asaMACNum, VLAN: 302, Port: 1},
		tables.MACEntry{MAC: sefl.MACToNumber("02:cc:00:00:00:01"), VLAN: 1, Port: 2}, // cluster
		tables.MACEntry{MAC: sefl.MACToNumber("02:dd:00:00:00:01"), VLAN: 1, Port: 3}, // mgmt
	)
	d.MACEntries += len(m2Tbl)
	m2 := net.AddElement("m2", "switch", 4, 4)
	if err := models.Switch(m2, m2Tbl, models.Egress); err != nil {
		panic(err)
	}
	d.MACTables["m2"] = m2Tbl

	// --- ASA: inside (VLAN side) <-> outside (M1 side).
	asaCfg, err := asa.ParseConfig(strings.NewReader(`
hostname dept-asa
dynamic-nat 141.85.37.2 1024-65535
access-list inbound deny any
tcp-options allow mss,wscale,sackok,sack,timestamp
tcp-options drop md5
tcp-options strip-sack-http
`))
	if err != nil {
		panic(err)
	}
	asaEl := net.AddElement("asa", "asa", 2, 2)
	asa.Build(asaEl, asaCfg)

	// --- M1 router: port 0 -> ASA (department public space), port 1 ->
	// management leg (the HOLE: a route to the management VLAN), port 2 ->
	// exit router. The fix removes the management route.
	m1FIB := tables.FIB{
		{Prefix: sefl.IPToNumber("141.85.37.0"), Len: 24, Port: 0},
		{Prefix: sefl.IPToNumber("192.168.137.0"), Len: 24, Port: 1},
		{Prefix: 0, Len: 0, Port: 2},
	}
	// Pad with additional departmental routes to reach the paper's ~400;
	// they point at the ASA side like the department's public space.
	for i := len(m1FIB); i < cfg.Routes; i++ {
		m1FIB = append(m1FIB, tables.Route{
			Prefix: uint64(141)<<24 | uint64(85)<<16 | uint64(i%250)<<8,
			Len:    24,
			Port:   0,
		})
	}
	d.RouteEntries = len(m1FIB)
	m1 := net.AddElement("m1", "router", 3, 3)
	if err := models.Router(m1, m1FIB, models.Egress); err != nil {
		panic(err)
	}
	d.FIBs["m1"] = m1FIB

	// --- Exit router: port 0 -> M1, port 1 -> Internet.
	exitFIB := tables.FIB{
		{Prefix: sefl.IPToNumber("141.85.37.0"), Len: 24, Port: 0},
		{Prefix: sefl.IPToNumber("192.168.137.0"), Len: 24, Port: 0}, // private: forwarded to M1 (the ISP does not, see §8.5)
		{Prefix: 0, Len: 0, Port: 1},
	}
	exit := net.AddElement("exit", "router", 2, 2)
	if err := models.Router(exit, exitFIB, models.Egress); err != nil {
		panic(err)
	}
	d.FIBs["exit"] = exitFIB

	// --- Leaf segments.
	internet := net.AddElement("internet", "sink", 1, 0)
	internet.SetInCode(0, sefl.NoOp{})
	labs := net.AddElement("labs", "sink", 1, 0)
	labs.SetInCode(0, sefl.NoOp{})
	// Management interfaces: any 192.168.137.0/24 destination terminates
	// here (switch telnet interfaces).
	mgmt := net.AddElement("mgmt", "sink", 2, 0)
	mgmt.SetInCode(core.WildcardPort, sefl.Constrain{C: sefl.Prefix{
		E: sefl.Ref{LV: sefl.IPDst}, Value: sefl.IPToNumber("192.168.137.0"), Len: 24}})
	// The L3 leg from M1 towards the management VLAN crosses M2's static
	// routes; the admins' fix (§8.5: "updating the static routes at M2")
	// turns it into a blackhole.
	mgmtgw := net.AddElement("mgmtgw", "staticroute", 1, 1)
	if cfg.Fixed {
		mgmtgw.SetInCode(0, sefl.Fail{Msg: "no route to management VLAN (static routes fixed at M2)"})
	} else {
		mgmtgw.SetInCode(0, sefl.Forward{Port: 0})
	}
	// Cluster switch: hosts inject at port 1; mgmt access via port 0.
	cluster := net.AddElement("cluster", "switch", 2, 2)
	cluster.SetInCode(core.WildcardPort, sefl.Forward{Port: 0})

	// --- Wiring (bidirectional pairs where traffic flows both ways).
	for s, name := range d.AccessSwitches {
		net.MustLink(name, 0, "agg", s)
		net.MustLink("agg", s, name, 0)
	}
	net.MustLink("agg", nA, "m2", 0)
	net.MustLink("m2", 0, "agg", nA)
	net.MustLink("m2", 1, "asa", 0) // inside
	net.MustLink("asa", 1, "m2", 1) // towards inside hosts
	net.MustLink("asa", 0, "m1", 0) // outside
	net.MustLink("m1", 0, "asa", 1)
	net.MustLink("m1", 2, "exit", 0)
	net.MustLink("exit", 0, "m1", 0)
	net.MustLink("exit", 1, "internet", 0)
	net.MustLink("m1", 1, "mgmtgw", 0) // the hole path (blackholed when fixed)
	net.MustLink("mgmtgw", 0, "mgmt", 0)
	net.MustLink("m2", 3, "mgmt", 1) // in-VLAN management access
	net.MustLink("m2", 2, "cluster", 0)
	net.MustLink("cluster", 0, "m2", 2) // cluster hosts reach the mgmt VLAN via M2
	return d
}

// AllPairs returns the canonical batch-verification scenario for the
// department network: one source per access switch (an office host port)
// plus the Internet-facing exit router, against the Internet, management,
// labs and access-switch targets. cmd/symbench and the benchmarks share
// this so they measure the same pair set.
func (d *Department) AllPairs() (sources []core.PortRef, targets []string) {
	for _, asw := range d.AccessSwitches {
		sources = append(sources, core.PortRef{Elem: asw, Port: 1})
	}
	sources = append(sources, core.PortRef{Elem: "exit", Port: 1})
	targets = append([]string{"internet", "mgmt", "labs"}, d.AccessSwitches...)
	return sources, targets
}

// OfficePacket returns injection code for a packet from an office host:
// a TCP packet with the office host's source MAC, destined to the ASA at
// layer 2.
func (d *Department) OfficePacket(specializeDst bool) sefl.Instr {
	is := []sefl.Instr{sefl.NewTCPPacket()}
	if specializeDst {
		is = append(is,
			sefl.Constrain{C: sefl.Prefix{E: sefl.Ref{LV: sefl.IPSrc}, Value: sefl.IPToNumber("10.30.2.0"), Len: 24}},
			sefl.Constrain{C: sefl.NotC(sefl.Prefix{E: sefl.Ref{LV: sefl.IPDst}, Value: sefl.IPToNumber("10.0.0.0"), Len: 8})},
			sefl.Constrain{C: sefl.NotC(sefl.Prefix{E: sefl.Ref{LV: sefl.IPDst}, Value: sefl.IPToNumber("192.168.0.0"), Len: 16})},
		)
	}
	return sefl.Seq(is...)
}
