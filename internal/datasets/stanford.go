package datasets

import (
	"fmt"

	"symnet/internal/core"
	"symnet/internal/hsa"
	"symnet/internal/models"
	"symnet/internal/tables"
)

// Backbone is a Stanford-like campus backbone: zone routers dual-homed to
// two backbone routers, each zone owning a /16 sliced into /24 routes. Both
// a SymNet network and an HSA network are generated from the *same* FIBs,
// so Table 3 compares the tools on identical inputs.
type Backbone struct {
	Net   *core.Network
	HNet  *hsa.Network
	Zones []string
	Cores []string
	Rules int
	// FIBs holds every router's forwarding table by element name (zones and
	// cores) — the authoritative rule state an incremental verification
	// service (internal/churn) registers to absorb route deltas.
	FIBs map[string]tables.FIB
}

// AllPairs returns the canonical batch-verification scenario for the
// backbone: inject at every zone router's host port, target every zone.
func (b *Backbone) AllPairs() (sources []core.PortRef, targets []string) {
	for _, z := range b.Zones {
		sources = append(sources, core.PortRef{Elem: z, Port: 2})
	}
	return sources, b.Zones
}

// StanfordBackbone generates the Table 3 topology: nZones zone routers with
// perZone /24 routes each, plus two backbone routers with per-zone routes.
// Zone router ports: 0 -> bb1, 1 -> bb2, 2 -> hosts (unconnected). Backbone
// router port z leads to zone z; the last port is the peering uplink.
func StanfordBackbone(nZones, perZone int) *Backbone {
	if nZones > 200 {
		panic("datasets: too many zones")
	}
	b := &Backbone{Net: core.NewNetwork(), HNet: hsa.NewNetwork(), FIBs: make(map[string]tables.FIB)}
	zoneFIB := make([]tables.FIB, nZones)
	for z := 0; z < nZones; z++ {
		name := fmt.Sprintf("zone%d", z)
		b.Zones = append(b.Zones, name)
		var fib tables.FIB
		// Own subnets -> host port 2.
		for i := 0; i < perZone; i++ {
			fib = append(fib, tables.Route{
				Prefix: uint64(10)<<24 | uint64(z)<<16 | uint64(i%256)<<8,
				Len:    24,
				Port:   2,
			})
		}
		// Zone /16 umbrella and default: split across the backbones.
		fib = append(fib,
			tables.Route{Prefix: uint64(10)<<24 | uint64(z)<<16, Len: 16, Port: 2},
			tables.Route{Prefix: 0, Len: 0, Port: z % 2}, // default to bb1/bb2
		)
		zoneFIB[z] = fib
		b.Rules += len(fib)
	}
	bbFIB := func() tables.FIB {
		var fib tables.FIB
		for z := 0; z < nZones; z++ {
			fib = append(fib, tables.Route{Prefix: uint64(10)<<24 | uint64(z)<<16, Len: 16, Port: z})
		}
		fib = append(fib, tables.Route{Prefix: 0, Len: 0, Port: nZones}) // uplink
		return fib
	}
	cores := []string{"bb1", "bb2"}
	b.Cores = cores
	// SymNet elements.
	for z, name := range b.Zones {
		e := b.Net.AddElement(name, "router", 3, 3)
		if err := models.Router(e, zoneFIB[z], models.Egress); err != nil {
			panic(err)
		}
		b.FIBs[name] = zoneFIB[z]
	}
	for _, name := range cores {
		e := b.Net.AddElement(name, "router", nZones+1, nZones+1)
		fib := bbFIB()
		if err := models.Router(e, fib, models.Egress); err != nil {
			panic(err)
		}
		b.FIBs[name] = fib
		b.Rules += nZones + 1
	}
	// HSA boxes from the same FIBs.
	for z, name := range b.Zones {
		b.HNet.Add(hsa.FromFIB(name, zoneFIB[z]))
	}
	for _, name := range cores {
		b.HNet.Add(hsa.FromFIB(name, bbFIB()))
	}
	// Links (bidirectional pairs), mirrored in both networks.
	link := func(a string, ap int, c string, cp int) {
		b.Net.MustLink(a, ap, c, cp)
		b.Net.MustLink(c, cp, a, ap)
		b.HNet.Link(a, ap, c, cp)
		b.HNet.Link(c, cp, a, ap)
	}
	for z, name := range b.Zones {
		link(name, 0, "bb1", z)
		link(name, 1, "bb2", z)
	}
	return b
}
