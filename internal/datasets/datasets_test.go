package datasets

import (
	"testing"

	"symnet/internal/core"
	"symnet/internal/sefl"
	"symnet/internal/solver"
	"symnet/internal/tables"
)

func TestSwitchTableDeterministic(t *testing.T) {
	a := SwitchTable(1000, 20, 42)
	b := SwitchTable(1000, 20, 42)
	if len(a) != 1000 {
		t.Fatalf("entries %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generator must be deterministic per seed")
		}
	}
	// Unique MACs, round-robin ports.
	seen := map[uint64]bool{}
	for i, e := range a {
		if seen[e.MAC] {
			t.Fatal("duplicate MAC")
		}
		seen[e.MAC] = true
		if e.Port != i%20 {
			t.Fatal("port assignment not round-robin")
		}
	}
}

func TestCoreFIBProperties(t *testing.T) {
	fib := CoreFIB(5000, 16, 7)
	if len(fib) != 5000 {
		t.Fatalf("routes %d", len(fib))
	}
	// Host bits must be zero, and nesting must exist.
	for _, r := range fib {
		if r.Prefix&^maskOf(r.Len) != 0 {
			t.Fatalf("route %v has host bits set", r)
		}
	}
	if tables.NumExclusions(tables.CompileLPM(fib)) == 0 {
		t.Fatal("FIB must contain nested prefixes")
	}
	// /24 should dominate, like real tables.
	count24 := 0
	for _, r := range fib {
		if r.Len == 24 {
			count24++
		}
	}
	if count24 < len(fib)/5 {
		t.Fatalf("/24 share too small: %d", count24)
	}
}

func maskOf(plen int) uint64 {
	if plen == 0 {
		return 0
	}
	return ^uint64(0) << (32 - uint(plen)) & 0xffffffff
}

func TestStanfordBackboneReachability(t *testing.T) {
	b := StanfordBackbone(6, 20)
	// Inject at zone0's host port: every other zone's host port must be
	// reachable through a backbone router.
	res, err := core.Run(b.Net, core.PortRef{Elem: b.Zones[0], Port: 2}, sefl.NewIPPacket(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reachedZones := map[string]bool{}
	for _, p := range res.ByStatus(core.Delivered) {
		last := p.Last()
		if last.Out && last.Port == 2 {
			reachedZones[last.Elem] = true
		}
	}
	for _, z := range b.Zones[1:] {
		if !reachedZones[z] {
			t.Errorf("zone %s unreachable", z)
		}
	}
}

func TestDepartmentScales(t *testing.T) {
	d := NewDepartment(DepartmentConfig{NumAccessSwitches: 15, HostsPerSwitch: 400, Routes: 400, Seed: 11})
	if d.MACEntries < 6000 {
		t.Fatalf("MAC entries %d, want >= 6000 (paper scale)", d.MACEntries)
	}
	if d.RouteEntries != 400 {
		t.Fatalf("routes %d", d.RouteEntries)
	}
	if got := len(d.Net.Elements()); got < 21 {
		t.Fatalf("devices %d, want >= 21 (paper: 21 devices)", got)
	}
}

func TestSplitTCPTopologyRoundTrip(t *testing.T) {
	net := NewSplitTCP(SplitTCPConfig{ProxyRewritesMAC: true})
	res, err := core.Run(net, core.PortRef{Elem: "ap", Port: 0}, SplitTCPClientPacket(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeliveredAt("client", 0)) != 1 {
		t.Fatalf("round trip paths: %+v", res.Stats)
	}
}

// TestSatHeavyCacheTraffic pins the property the observability smoke and the
// cache telemetry rest on: the cross-field disjunction chain issues full Sat
// checks (not compressible to interval sets), and a sequential batch of
// identical queries over a shared cache misses exactly once per rule and
// hits on every replay.
func TestSatHeavyCacheTraffic(t *testing.T) {
	const rules, queries = 6, 4
	net, inject := SatHeavy(rules)
	memo := solver.NewSatCache()
	var stats solver.Stats
	for q := 0; q < queries; q++ {
		res, err := core.Run(net, inject, sefl.NewIPPacket(), core.Options{SatMemo: memo, Stats: &stats})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Delivered != 1 {
			t.Fatalf("query %d: delivered = %d, want 1", q, res.Stats.Delivered)
		}
	}
	if stats.SatChecks == 0 {
		t.Fatal("SatHeavy issued no Sat checks — disjunctions were compressed away")
	}
	if h := memo.Hits(); h != int64(queries-1)*memo.Misses() {
		t.Errorf("hits = %d, misses = %d: want hits = (queries-1)*misses for identical sequential queries", h, memo.Misses())
	}
	if memo.Misses() == 0 {
		t.Error("no cache misses recorded")
	}
}
