package datasets

import (
	"fmt"

	"symnet/internal/core"
	"symnet/internal/sefl"
)

// SatHeavy builds the satisfiability-cache workload: inject -> rule0 ..
// rule{rules-1} -> sink, where every rule element asserts a cross-field
// disjunction (IPSrc in one range OR IPDst in another). A disjunction over
// two distinct symbols cannot be compressed into a single symbol's interval
// set, so each one stays pending and the engine decides it with a full Sat
// check — the paper's "calls to the constraint solver" — at every subsequent
// guard.
//
// A batch of identical queries over this chain (the repair-and-verify shape:
// the same property re-checked per candidate change) replays identical
// assertion chains, so with a shared SatCache all but the first query answer
// every check from cache: exactly rules misses for the whole batch, and
// (queries-1) * rules hits when run sequentially. That makes the workload
// the natural probe for the cache telemetry (hit/miss counters, relay counts
// in the distributed verdict exchange) and for per-check latency histograms.
func SatHeavy(rules int) (*core.Network, core.PortRef) {
	net := core.NewNetwork()
	for i := 0; i < rules; i++ {
		e := net.AddElement(fmt.Sprintf("rule%d", i), "acl", 1, 1)
		e.SetInCode(0, sefl.Seq(
			sefl.Constrain{C: sefl.OrC(
				sefl.Ge(sefl.Ref{LV: sefl.IPSrc}, sefl.C(uint64(16*i))),
				sefl.Le(sefl.Ref{LV: sefl.IPDst}, sefl.C(uint64(1<<24+512*i))),
			)},
			sefl.Forward{Port: 0},
		))
	}
	sink := net.AddElement("sink", "sink", 1, 0)
	sink.SetInCode(0, sefl.NoOp{})
	for i := 0; i+1 < rules; i++ {
		net.MustLink(fmt.Sprintf("rule%d", i), 0, fmt.Sprintf("rule%d", i+1), 0)
	}
	first := "sink"
	if rules > 0 {
		net.MustLink(fmt.Sprintf("rule%d", rules-1), 0, "sink", 0)
		first = "rule0"
	}
	return net, core.PortRef{Elem: first, Port: 0}
}
