package datasets

import (
	"symnet/internal/core"
	"symnet/internal/models"
	"symnet/internal/sefl"
)

// SplitTCP builds the Fig. 10 deployment of §8.4: client C behind an access
// point, redirection router R1 steering traffic through the Split-TCP proxy
// P (by rewriting destination MACs), and exit router R2 towards the
// Internet. Options toggle the four documented scenarios.
type SplitTCPConfig struct {
	// MTUDrop makes R1 drop packets larger than 1536 bytes.
	MTUDrop bool
	// Tunnel enables IP-in-IP between R1 and P (the MTU blackhole).
	Tunnel bool
	// ProxyStripsVLAN reproduces the missing-VLAN-tagging bug: P removes
	// the VLAN tag and fails to restore it before pushing frames back.
	ProxyStripsVLAN bool
	// DHCPAppliance makes R2 filter packets whose (EtherSrc, IPSrc) pair
	// does not match the recorded DHCP lease.
	DHCPAppliance bool
	// ProxyRewritesMAC: the proxy replaces the source MAC (always true in
	// the real deployment; exposed to isolate the DHCP finding).
	ProxyRewritesMAC bool
}

// Element and address names used by the Split-TCP scenario.
const (
	SplitClientMAC = "02:0c:00:00:00:01"
	SplitProxyMAC  = "02:0c:00:00:00:99"
	SplitR1MAC     = "02:0c:00:00:00:11"
	SplitR2MAC     = "02:0c:00:00:00:22"
)

// NewSplitTCP builds the topology: C -> AP -> R1 -> P -> R2 -> Internet,
// with the return path mirrored at R2 for round-trip checks.
func NewSplitTCP(cfg SplitTCPConfig) *core.Network {
	net := core.NewNetwork()

	// Client and access point: transparent L2 hops.
	ap := net.AddElement("ap", "ap", 2, 2)
	ap.SetInCode(0, sefl.Forward{Port: 0}) // towards R1
	ap.SetInCode(1, sefl.Forward{Port: 1}) // back to client

	// R1: redirection router. Forward direction steers via the proxy by
	// rewriting the destination MAC; optionally drops oversized frames and
	// tunnels towards P.
	r1 := net.AddElement("r1", "router", 3, 3)
	var fwd []sefl.Instr
	switch {
	case cfg.Tunnel:
		// Tunnel towards P: strip Ethernet, encapsulate, re-frame. The MTU
		// check applies to the *encapsulated* packet — the §8.4 blackhole.
		fwd = append(fwd,
			models.StripEthernet(),
			models.IPinIPEncap("10.9.0.1", "10.9.0.2"),
			models.PushEthernet(SplitR1MAC, SplitProxyMAC, sefl.EtherTypeIPv4),
		)
	case cfg.ProxyStripsVLAN:
		// The deployment carries VLAN-tagged frames between R1 and P.
		fwd = append(fwd, models.VLANWrap(100, SplitR1MAC, SplitProxyMAC))
	default:
		fwd = append(fwd, sefl.Assign{LV: sefl.EtherDst, E: sefl.MAC(SplitProxyMAC)})
	}
	if cfg.MTUDrop {
		fwd = append(fwd, sefl.Constrain{C: sefl.Lt(sefl.Ref{LV: sefl.IPLen}, sefl.C(1536))})
	}
	fwd = append(fwd, sefl.Forward{Port: 0}) // towards P
	r1.SetInCode(0, sefl.Seq(fwd...))
	// Return direction from P back to the client; drops untagged frames
	// when VLAN tagging is expected.
	var ret []sefl.Instr
	if cfg.ProxyStripsVLAN {
		ret = append(ret, models.VLANUnwrap(SplitR1MAC, SplitClientMAC))
	}
	ret = append(ret, sefl.Forward{Port: 1})
	r1.SetInCode(1, sefl.Seq(ret...))

	// P: the Split-TCP proxy. It terminates and re-originates connections;
	// statically we model the packet transformations: source MAC rewrite
	// (and the VLAN bug: tags removed, never restored).
	p := net.AddElement("proxy", "splittcp", 2, 2)
	var pFwd []sefl.Instr
	if cfg.Tunnel {
		pFwd = append(pFwd,
			models.StripEthernet(),
			models.IPinIPDecap(),
			models.PushEthernet(SplitProxyMAC, SplitR2MAC, sefl.EtherTypeIPv4),
		)
	}
	if cfg.ProxyStripsVLAN {
		// Bug: remove the tag before processing, do NOT restore it.
		pFwd = append(pFwd, models.VLANUnwrap(SplitProxyMAC, SplitR2MAC))
	}
	if cfg.ProxyRewritesMAC {
		pFwd = append(pFwd, sefl.Assign{LV: sefl.EtherSrc, E: sefl.MAC(SplitProxyMAC)})
	}
	pFwd = append(pFwd, sefl.Assign{LV: sefl.EtherDst, E: sefl.MAC(SplitR2MAC)}, sefl.Forward{Port: 0})
	p.SetInCode(0, sefl.Seq(pFwd...))
	var pRet []sefl.Instr
	if cfg.ProxyStripsVLAN {
		// Return frames towards R1 are pushed back *untagged* — the bug.
		pRet = append(pRet, sefl.Assign{LV: sefl.EtherDst, E: sefl.MAC(SplitR1MAC)})
	} else {
		pRet = append(pRet, sefl.Assign{LV: sefl.EtherDst, E: sefl.MAC(SplitR1MAC)})
	}
	pRet = append(pRet, sefl.Forward{Port: 1})
	p.SetInCode(1, sefl.Seq(pRet...))

	// R2: exit router with a DHCP-lease security appliance and an IPMirror
	// for round-trip checks.
	r2 := net.AddElement("r2", "router", 2, 2)
	var r2In []sefl.Instr
	if cfg.DHCPAppliance {
		// Lease check: the recorded (origEther, origIP) pair must match the
		// packet's current source fields (§8.4 "Security Appliance").
		r2In = append(r2In,
			sefl.Constrain{C: sefl.Eq(sefl.Ref{LV: sefl.Meta{Name: "origIP"}}, sefl.Ref{LV: sefl.IPSrc})},
			sefl.Constrain{C: sefl.Eq(sefl.Ref{LV: sefl.Meta{Name: "origEther"}}, sefl.Ref{LV: sefl.EtherSrc})},
		)
	}
	r2In = append(r2In, sefl.Forward{Port: 0})
	r2.SetInCode(0, sefl.Seq(r2In...))
	r2.SetInCode(1, sefl.Forward{Port: 1}) // return entry towards the proxy

	// Internet-side mirror bounces traffic back (for reachability checks
	// C -> R2 -> C).
	mirror := net.AddElement("mirror", "mirror", 1, 1)
	mirror.SetInCode(0, sefl.Seq(
		sefl.Allocate{LV: sefl.Meta{Name: "t"}, Size: 32},
		sefl.Assign{LV: sefl.Meta{Name: "t"}, E: sefl.Ref{LV: sefl.IPSrc}},
		sefl.Assign{LV: sefl.IPSrc, E: sefl.Ref{LV: sefl.IPDst}},
		sefl.Assign{LV: sefl.IPDst, E: sefl.Ref{LV: sefl.Meta{Name: "t"}}},
		sefl.Deallocate{LV: sefl.Meta{Name: "t"}, Size: 32},
		sefl.Forward{Port: 0},
	))

	client := net.AddElement("client", "sink", 1, 0)
	client.SetInCode(0, sefl.NoOp{})

	net.MustLink("ap", 0, "r1", 0)
	net.MustLink("r1", 0, "proxy", 0)
	net.MustLink("proxy", 0, "r2", 0)
	net.MustLink("r2", 0, "mirror", 0)
	net.MustLink("mirror", 0, "r2", 1)
	net.MustLink("r2", 1, "proxy", 1)
	net.MustLink("proxy", 1, "r1", 1)
	net.MustLink("r1", 1, "ap", 1)
	net.MustLink("ap", 1, "client", 0)
	return net
}

// SplitTCPClientPacket is the injection template: a TCP packet from the
// client, with DHCP-lease metadata recording the original source bindings
// (set by C, per §8.4).
func SplitTCPClientPacket() sefl.Instr {
	return sefl.Seq(
		sefl.NewTCPPacket(),
		// A valid TCP/IP packet is 40..9000 bytes long; without the bounds
		// the solver (correctly) finds 16-bit lengths that wrap around the
		// tunnel's +20 and defeat the MTU constraint.
		sefl.Constrain{C: sefl.Ge(sefl.Ref{LV: sefl.IPLen}, sefl.C(40))},
		sefl.Constrain{C: sefl.Le(sefl.Ref{LV: sefl.IPLen}, sefl.C(9000))},
		sefl.Assign{LV: sefl.EtherSrc, E: sefl.MAC(SplitClientMAC)},
		sefl.Allocate{LV: sefl.Meta{Name: "origIP"}, Size: 32},
		sefl.Assign{LV: sefl.Meta{Name: "origIP"}, E: sefl.Ref{LV: sefl.IPSrc}},
		sefl.Allocate{LV: sefl.Meta{Name: "origEther"}, Size: 48},
		sefl.Assign{LV: sefl.Meta{Name: "origEther"}, E: sefl.Ref{LV: sefl.EtherSrc}},
	)
}
