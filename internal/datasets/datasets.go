// Package datasets generates the synthetic workloads of the paper's
// evaluation: switch MAC tables of configurable size (Fig. 8), core-router
// FIBs with realistic prefix-length distributions and overlap (Table 2), a
// Stanford-backbone-like topology (Table 3), the CS department network
// (Fig. 11, §8.5), and the Split-TCP deployment (Fig. 10, §8.4).
//
// All generators are deterministic: they derive from explicit seeds, so
// every experiment is exactly reproducible. This stands in for the paper's
// proprietary snapshots (the department's switch tables, the RouteViews
// core FIB [8], the Stanford dataset [10]) — only the size and overlap
// statistics matter for the measured behaviour, not the concrete addresses.
package datasets

import (
	"math/rand"

	"symnet/internal/expr"
	"symnet/internal/tables"
)

// SwitchTable generates a MAC table with the given number of entries spread
// round-robin over numPorts output ports. Mirroring the paper's methodology
// for Fig. 8, entries beyond the base table are duplicates of earlier rows
// with fresh unique MAC addresses ("we duplicate existing entries as many
// times as needed; each entry gets a unique destination MAC address").
func SwitchTable(entries, numPorts int, seed int64) tables.MACTable {
	rng := rand.New(rand.NewSource(seed))
	t := make(tables.MACTable, 0, entries)
	used := make(map[uint64]bool, entries)
	for len(t) < entries {
		mac := rng.Uint64() & expr.Mask(48)
		// Avoid multicast/broadcast bit and duplicates for realism.
		mac &^= 1 << 40
		if mac == 0 || used[mac] {
			continue
		}
		used[mac] = true
		t = append(t, tables.MACEntry{
			MAC:  mac,
			VLAN: 1,
			Port: len(t) % numPorts,
		})
	}
	return t
}

// prefixLenDist approximates the prefix-length mix of a real core-router
// FIB: dominated by /24s, with significant /16-/23 mass, few short
// prefixes, and a tail of host routes. The values are per-mille weights.
var prefixLenDist = []struct {
	len    int
	weight int
}{
	{8, 4}, {12, 6}, {14, 8}, {15, 10}, {16, 90},
	{17, 30}, {18, 40}, {19, 70}, {20, 80}, {21, 80},
	{22, 110}, {23, 90}, {24, 360}, {28, 5}, {30, 5}, {32, 12},
}

// CoreFIB generates a FIB with n routes over numPorts next hops, with a
// realistic prefix-length distribution and deliberate nesting (a fraction
// of routes are generated inside previously generated shorter prefixes, so
// longest-prefix-match compilation has real work to do, as in the paper's
// 188,500-entry table with 183,000 exclusion constraints).
func CoreFIB(n, numPorts int, seed int64) tables.FIB {
	rng := rand.New(rand.NewSource(seed))
	total := 0
	for _, d := range prefixLenDist {
		total += d.weight
	}
	pickLen := func() int {
		r := rng.Intn(total)
		for _, d := range prefixLenDist {
			if r < d.weight {
				return d.len
			}
			r -= d.weight
		}
		return 24
	}
	type pfxKey struct {
		pfx uint64
		ln  int
	}
	seen := make(map[pfxKey]bool, n)
	fib := make(tables.FIB, 0, n)
	var parents []tables.Route // candidate containers for nested routes
	for len(fib) < n {
		plen := pickLen()
		var addr uint64
		// ~30% of routes nest inside an existing shorter prefix.
		if len(parents) > 0 && rng.Intn(10) < 3 {
			p := parents[rng.Intn(len(parents))]
			if p.Len < plen {
				addr = p.Prefix | (rng.Uint64() & expr.Mask(32) &^ expr.PrefixMask(p.Len, 32))
			} else {
				addr = rng.Uint64() & expr.Mask(32)
			}
		} else {
			addr = rng.Uint64() & expr.Mask(32)
		}
		addr &= expr.PrefixMask(plen, 32)
		// Keep out of multicast/reserved space for realism.
		if addr>>28 >= 0xe {
			continue
		}
		k := pfxKey{addr, plen}
		if seen[k] {
			continue
		}
		seen[k] = true
		r := tables.Route{Prefix: addr, Len: plen, Port: rng.Intn(numPorts)}
		fib = append(fib, r)
		if plen <= 20 && len(parents) < 4096 {
			parents = append(parents, r)
		}
	}
	return fib
}

// Subsample returns the first n routes of a FIB (the paper runs Table 2
// with 1%, 33% and 100% of the prefixes).
func Subsample(f tables.FIB, n int) tables.FIB {
	if n >= len(f) {
		return f
	}
	return f[:n]
}
