package tables

import (
	"fmt"
	"io"

	"symnet/internal/sefl"
)

// WriteTo serializes the MAC table in the snapshot format ParseMACTable
// reads ("<vlan> <mac> <port>" per line), so generated tables round-trip
// through the parser byte-identically.
func (t MACTable) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, e := range t {
		n, err := fmt.Fprintf(w, "%d %s %d\n", e.VLAN, sefl.NumberToMAC(e.MAC), e.Port)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// WriteTo serializes the FIB in the snapshot format ParseFIB reads
// ("<prefix>/<len> <port>" per line), so generated FIBs round-trip through
// the parser byte-identically.
func (f FIB) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, r := range f {
		n, err := fmt.Fprintf(w, "%s/%d %d\n", sefl.NumberToIP(r.Prefix), r.Len, r.Port)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
