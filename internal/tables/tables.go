// Package tables parses forwarding-state snapshots — switch MAC tables and
// router forwarding tables — and prepares them for SEFL model generation.
// This is the paper's "parsers that take switch MAC tables [and] router
// forwarding tables ... and automatically generate the corresponding SEFL
// models" (§7.1); the SEFL generation itself lives in internal/models.
package tables

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"symnet/internal/expr"
	"symnet/internal/sefl"
)

// MACEntry is one switch MAC-table row: MAC address, VLAN, output port.
type MACEntry struct {
	MAC  uint64
	VLAN int
	Port int
}

// MACTable is a parsed switch MAC table.
type MACTable []MACEntry

// ParseMACTable reads a MAC-table snapshot. Each non-comment line has the
// form:
//
//	<vlan> <mac> <port>
//
// e.g. "302 00:1a:2b:3c:4d:5e 7". '#' starts a comment.
func ParseMACTable(r io.Reader) (MACTable, error) {
	var t MACTable
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		fields, ok := splitLine(sc.Text())
		if !ok {
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("tables: mac table line %d: want 3 fields, got %d", line, len(fields))
		}
		vlan, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("tables: mac table line %d: bad vlan: %v", line, err)
		}
		mac := sefl.MACToNumber(fields[1])
		port, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("tables: mac table line %d: bad port: %v", line, err)
		}
		t = append(t, MACEntry{MAC: mac, VLAN: vlan, Port: port})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// Ports returns the sorted set of output ports used by the table.
func (t MACTable) Ports() []int {
	seen := map[int]bool{}
	for _, e := range t {
		seen[e.Port] = true
	}
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// ByPort groups MAC addresses by output port (sorted ports, sorted MACs).
func (t MACTable) ByPort() map[int][]uint64 {
	out := make(map[int][]uint64)
	for _, e := range t {
		out[e.Port] = append(out[e.Port], e.MAC)
	}
	for p := range out {
		sort.Slice(out[p], func(i, j int) bool { return out[p][i] < out[p][j] })
	}
	return out
}

// Route is one forwarding-table entry: destination prefix and output port.
type Route struct {
	Prefix uint64 // network address, host bits zero
	Len    int    // prefix length in bits
	Port   int
}

func (r Route) String() string {
	return fmt.Sprintf("%s/%d->%d", sefl.NumberToIP(r.Prefix), r.Len, r.Port)
}

// FIB is a parsed router forwarding table.
type FIB []Route

// ParseFIB reads a forwarding-table snapshot. Each non-comment line has the
// form:
//
//	<prefix>/<len> <port>
//
// e.g. "10.0.0.0/8 0".
func ParseFIB(r io.Reader) (FIB, error) {
	var f FIB
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		fields, ok := splitLine(sc.Text())
		if !ok {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("tables: fib line %d: want 2 fields, got %d", line, len(fields))
		}
		pfx, plen, err := ParsePrefix(fields[0])
		if err != nil {
			return nil, fmt.Errorf("tables: fib line %d: %v", line, err)
		}
		port, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("tables: fib line %d: bad port: %v", line, err)
		}
		f = append(f, Route{Prefix: pfx, Len: plen, Port: port})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

// ParsePrefix parses "a.b.c.d/len" into a masked network address and length.
func ParsePrefix(s string) (uint64, int, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return 0, 0, fmt.Errorf("missing / in prefix %q", s)
	}
	plen, err := strconv.Atoi(s[slash+1:])
	if err != nil || plen < 0 || plen > 32 {
		return 0, 0, fmt.Errorf("bad prefix length in %q", s)
	}
	addr := sefl.IPToNumber(s[:slash])
	return addr & expr.PrefixMask(plen, 32), plen, nil
}

// Ports returns the sorted set of output ports used by the FIB.
func (f FIB) Ports() []int {
	seen := map[int]bool{}
	for _, r := range f {
		seen[r.Port] = true
	}
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// CompiledRoute is a route plus the more-specific prefixes that must NOT
// match for the route to apply (the paper's "!a & b" longest-prefix-match
// compilation, §7).
type CompiledRoute struct {
	Route
	Exclusions []Route
}

// CompileLPM computes, for every route, its covering exclusions: all strictly
// more-specific routes contained in it. Duplicate (prefix, len) entries keep
// the first occurrence, matching typical FIB snapshot semantics.
//
// The algorithm indexes routes by (length, prefix) and, for each route,
// looks up each shorter length once — O(N * 32) hash lookups overall, which
// handles the paper's 188,500-prefix table comfortably.
func CompileLPM(f FIB) []CompiledRoute {
	// Deduplicate, keeping first occurrence.
	type pfxKey struct {
		pfx uint64
		ln  int
	}
	seen := make(map[pfxKey]bool, len(f))
	routes := make([]Route, 0, len(f))
	for _, r := range f {
		k := pfxKey{r.Prefix, r.Len}
		if seen[k] {
			continue
		}
		seen[k] = true
		routes = append(routes, r)
	}
	// Index by length.
	byLen := make(map[int]map[uint64]Route)
	for _, r := range routes {
		m := byLen[r.Len]
		if m == nil {
			m = make(map[uint64]Route)
			byLen[r.Len] = m
		}
		m[r.Prefix] = r
	}
	// For each route, find all more-specific routes it contains by scanning
	// longer lengths; attach the exclusion to the containing route.
	// Equivalent, cheaper direction: for each route, for each *shorter*
	// length, find its container and register this route as the container's
	// exclusion.
	exclusions := make(map[pfxKey][]Route)
	for _, r := range routes {
		for l := r.Len - 1; l >= 0; l-- {
			m := byLen[l]
			if m == nil {
				continue
			}
			parent := r.Prefix & expr.PrefixMask(l, 32)
			if _, ok := m[parent]; ok {
				k := pfxKey{parent, l}
				exclusions[k] = append(exclusions[k], r)
			}
		}
	}
	out := make([]CompiledRoute, 0, len(routes))
	for _, r := range routes {
		ex := exclusions[pfxKey{r.Prefix, r.Len}]
		sort.Slice(ex, func(i, j int) bool {
			if ex[i].Len != ex[j].Len {
				return ex[i].Len > ex[j].Len
			}
			return ex[i].Prefix < ex[j].Prefix
		})
		out = append(out, CompiledRoute{Route: r, Exclusions: ex})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Len != out[j].Len {
			return out[i].Len > out[j].Len // most specific first
		}
		if out[i].Prefix != out[j].Prefix {
			return out[i].Prefix < out[j].Prefix
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// NumExclusions returns the total number of exclusion constraints produced
// by CompileLPM output (the paper reports 183,000 additional constraints
// for the 188,500-entry table).
func NumExclusions(cs []CompiledRoute) int {
	n := 0
	for _, c := range cs {
		n += len(c.Exclusions)
	}
	return n
}

func splitLine(s string) ([]string, bool) {
	if i := strings.IndexByte(s, '#'); i >= 0 {
		s = s[:i]
	}
	fields := strings.Fields(s)
	return fields, len(fields) > 0
}
