package tables

import (
	"strings"
	"testing"

	"symnet/internal/sefl"
)

func TestParseMACTable(t *testing.T) {
	in := `# vlan mac port
302 00:1a:2b:3c:4d:5e 7
304 00:1a:2b:3c:4d:5f 2  # lab host
`
	tbl, err := ParseMACTable(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl) != 2 {
		t.Fatalf("entries = %d", len(tbl))
	}
	if tbl[0].VLAN != 302 || tbl[0].Port != 7 || tbl[0].MAC != sefl.MACToNumber("00:1a:2b:3c:4d:5e") {
		t.Fatalf("entry 0: %+v", tbl[0])
	}
	ports := tbl.Ports()
	if len(ports) != 2 || ports[0] != 2 || ports[1] != 7 {
		t.Fatalf("ports: %v", ports)
	}
}

func TestParseMACTableErrors(t *testing.T) {
	if _, err := ParseMACTable(strings.NewReader("302 00:1a:2b:3c:4d:5e")); err == nil {
		t.Fatal("missing field must error")
	}
	if _, err := ParseMACTable(strings.NewReader("x 00:1a:2b:3c:4d:5e 1")); err == nil {
		t.Fatal("bad vlan must error")
	}
}

func TestParseFIB(t *testing.T) {
	in := `10.0.0.0/8 0
192.168.0.0/24 1
0.0.0.0/0 2
`
	fib, err := ParseFIB(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(fib) != 3 {
		t.Fatalf("routes = %d", len(fib))
	}
	if fib[0].Prefix != sefl.IPToNumber("10.0.0.0") || fib[0].Len != 8 {
		t.Fatalf("route 0: %+v", fib[0])
	}
	if fib[2].Len != 0 || fib[2].Prefix != 0 {
		t.Fatalf("default route: %+v", fib[2])
	}
}

func TestParsePrefixMasksHostBits(t *testing.T) {
	pfx, plen, err := ParsePrefix("10.1.2.3/8")
	if err != nil {
		t.Fatal(err)
	}
	if plen != 8 || pfx != sefl.IPToNumber("10.0.0.0") {
		t.Fatalf("prefix %x/%d; host bits must be masked", pfx, plen)
	}
	if _, _, err := ParsePrefix("10.0.0.0/33"); err == nil {
		t.Fatal("prefix length 33 must error")
	}
	if _, _, err := ParsePrefix("10.0.0.0"); err == nil {
		t.Fatal("missing length must error")
	}
}

func TestCompileLPM(t *testing.T) {
	// The paper's §7 example table.
	fib := FIB{
		{Prefix: sefl.IPToNumber("192.168.0.1"), Len: 32, Port: 0},
		{Prefix: sefl.IPToNumber("10.0.0.0"), Len: 8, Port: 0},
		{Prefix: sefl.IPToNumber("192.168.0.0"), Len: 24, Port: 1},
		{Prefix: sefl.IPToNumber("10.10.0.1"), Len: 32, Port: 1},
	}
	cs := CompileLPM(fib)
	if len(cs) != 4 {
		t.Fatalf("compiled routes = %d", len(cs))
	}
	// Most specific first.
	if cs[0].Len != 32 || cs[1].Len != 32 {
		t.Fatalf("ordering: %+v", cs)
	}
	byStr := map[string]CompiledRoute{}
	for _, c := range cs {
		byStr[c.Route.String()] = c
	}
	// 10/8 must exclude 10.10.0.1/32.
	ten := byStr["10.0.0.0/8->0"]
	if len(ten.Exclusions) != 1 || ten.Exclusions[0].Len != 32 {
		t.Fatalf("10/8 exclusions: %+v", ten.Exclusions)
	}
	// 192.168.0.0/24 must exclude 192.168.0.1/32.
	net24 := byStr["192.168.0.0/24->1"]
	if len(net24.Exclusions) != 1 || net24.Exclusions[0].Prefix != sefl.IPToNumber("192.168.0.1") {
		t.Fatalf("/24 exclusions: %+v", net24.Exclusions)
	}
	// Host routes have no exclusions.
	if len(byStr["192.168.0.1/32->0"].Exclusions) != 0 {
		t.Fatal("host route must have no exclusions")
	}
	if got := NumExclusions(cs); got != 2 {
		t.Fatalf("total exclusions = %d", got)
	}
}

func TestCompileLPMChain(t *testing.T) {
	// Nested prefixes: /8 ⊃ /16 ⊃ /24; the /8 excludes both, /16 excludes
	// the /24.
	fib := FIB{
		{Prefix: sefl.IPToNumber("10.0.0.0"), Len: 8, Port: 0},
		{Prefix: sefl.IPToNumber("10.1.0.0"), Len: 16, Port: 1},
		{Prefix: sefl.IPToNumber("10.1.2.0"), Len: 24, Port: 2},
	}
	cs := CompileLPM(fib)
	byLen := map[int]CompiledRoute{}
	for _, c := range cs {
		byLen[c.Len] = c
	}
	if len(byLen[8].Exclusions) != 2 {
		t.Fatalf("/8 exclusions: %+v", byLen[8].Exclusions)
	}
	if len(byLen[16].Exclusions) != 1 {
		t.Fatalf("/16 exclusions: %+v", byLen[16].Exclusions)
	}
	if len(byLen[24].Exclusions) != 0 {
		t.Fatalf("/24 exclusions: %+v", byLen[24].Exclusions)
	}
}

func TestCompileLPMDeduplicates(t *testing.T) {
	fib := FIB{
		{Prefix: sefl.IPToNumber("10.0.0.0"), Len: 8, Port: 0},
		{Prefix: sefl.IPToNumber("10.0.0.0"), Len: 8, Port: 1}, // duplicate, dropped
	}
	cs := CompileLPM(fib)
	if len(cs) != 1 || cs[0].Port != 0 {
		t.Fatalf("dedup: %+v", cs)
	}
}

func TestMACTableRoundTrip(t *testing.T) {
	in := MACTable{
		{MAC: 0x001a2b3c4d5e, VLAN: 302, Port: 7},
		{MAC: 0xaabbccddeeff, VLAN: 1, Port: 0},
	}
	var buf strings.Builder
	if _, err := in.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ParseMACTable(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("entry %d: %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestFIBRoundTrip(t *testing.T) {
	in := FIB{
		{Prefix: 0x0a000000, Len: 8, Port: 0},
		{Prefix: 0xc0a80100, Len: 24, Port: 3},
		{Prefix: 0xc0a80101, Len: 32, Port: 5},
	}
	var buf strings.Builder
	if _, err := in.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ParseFIB(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("route %d: %+v, want %+v", i, out[i], in[i])
		}
	}
}
