package verify_test

import (
	"os"
	"reflect"
	"testing"

	"symnet/internal/core"
	"symnet/internal/datasets"
	"symnet/internal/dist"
	"symnet/internal/sefl"
	"symnet/internal/verify"
)

// TestMain lets this test binary serve as its own dist worker (see
// internal/dist).
func TestMain(m *testing.M) {
	dist.MaybeWorker()
	os.Exit(m.Run())
}

// TestAllPairsDistMatchesInProcess pins that the distributed all-pairs
// matrix equals the in-process one, both via the procs=0 fast path and via
// real worker subprocesses.
func TestAllPairsDistMatchesInProcess(t *testing.T) {
	d := datasets.NewDepartment(datasets.DepartmentConfig{NumAccessSwitches: 3, HostsPerSwitch: 10, Routes: 16, Seed: 5})
	srcs, targets := d.AllPairs()
	opts := core.Options{MaxHops: 64}

	want, err := verify.AllPairsReachability(d.Net, srcs, sefl.NewTCPPacket(), targets, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	procsGrid := []int{0, 2}
	if testing.Short() {
		procsGrid = []int{0}
	}
	for _, procs := range procsGrid {
		got, err := verify.AllPairsReachabilityDist(d.Net, srcs, sefl.NewTCPPacket(), targets, opts, procs, 1)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if !reflect.DeepEqual(got.Reachable, want.Reachable) {
			t.Errorf("procs=%d: Reachable differs\n got: %v\nwant: %v", procs, got.Reachable, want.Reachable)
		}
		if !reflect.DeepEqual(got.PathCount, want.PathCount) {
			t.Errorf("procs=%d: PathCount differs\n got: %v\nwant: %v", procs, got.PathCount, want.PathCount)
		}
		if got.Pairs() != want.Pairs() {
			t.Errorf("procs=%d: pairs %d != %d", procs, got.Pairs(), want.Pairs())
		}
	}
}
