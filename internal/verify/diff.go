package verify

import "symnet/internal/core"

// Report diffing: the churn serving layer publishes a new immutable
// AllPairsReport per absorbed delta batch, and watch clients consume the
// transitions between consecutive versions. CloneShallow gives the writer a
// copy-on-write snapshot to splice re-verified rows into; DiffReports
// computes which (source, target) cells changed between two snapshots of the
// same query.

// CellDelta records one (source, target) reachability cell that differs
// between two reports of the same all-pairs query.
type CellDelta struct {
	// Src and Dst index the reports' Sources and Targets.
	Src, Dst int
	// FromReachable/ToReachable are the cell's old and new verdicts.
	FromReachable, ToReachable bool
	// FromPaths/ToPaths are the old and new delivered-path counts.
	FromPaths, ToPaths int
}

// Flipped reports whether the cell's reachability verdict changed (as
// opposed to only its delivered-path count).
func (d CellDelta) Flipped() bool { return d.FromReachable != d.ToReachable }

// CloneShallow returns a copy-on-write snapshot of the report: fresh outer
// slices whose rows alias the original's. A writer may replace whole rows
// (Results[i], Reachable[i], PathCount[i]) on the clone without disturbing
// readers of the original; rows themselves must be treated as immutable
// after publication.
func (r *AllPairsReport) CloneShallow() *AllPairsReport {
	return &AllPairsReport{
		Sources:   r.Sources,
		Targets:   r.Targets,
		Reachable: append([][]bool(nil), r.Reachable...),
		PathCount: append([][]int(nil), r.PathCount...),
		Results:   append([]*core.Result(nil), r.Results...),
	}
}

// DiffReports returns every cell whose reachability verdict or delivered-path
// count differs between two reports of the same query, in row-major
// (source, target) order. Both reports must answer the same sources and
// targets; reports of different shapes yield no defined diff and return nil.
func DiffReports(old, new *AllPairsReport) []CellDelta {
	if old == nil || new == nil ||
		len(old.Reachable) != len(new.Reachable) || len(old.Targets) != len(new.Targets) {
		return nil
	}
	var out []CellDelta
	for s := range new.Reachable {
		or, nr := old.Reachable[s], new.Reachable[s]
		oc, nc := old.PathCount[s], new.PathCount[s]
		if len(or) != len(nr) {
			return nil
		}
		// Rows alias each other across copy-on-write snapshots unless the
		// writer replaced them; skip shared rows without scanning.
		if len(nr) > 0 && &or[0] == &nr[0] {
			continue
		}
		for t := range nr {
			if or[t] != nr[t] || oc[t] != nc[t] {
				out = append(out, CellDelta{
					Src: s, Dst: t,
					FromReachable: or[t], ToReachable: nr[t],
					FromPaths: oc[t], ToPaths: nc[t],
				})
			}
		}
	}
	return out
}
