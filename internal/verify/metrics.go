package verify

import "symnet/internal/obs"

// pairMetrics bundles the per-pair telemetry of an all-pairs run: outcome
// counters (how many (source, target) pairs were reachable vs. not) and the
// per-pair classification latency. All fields are nil — one-branch no-ops —
// when observability is off.
type pairMetrics struct {
	delivered   *obs.Counter
	unreachable *obs.Counter
	pairNs      *obs.Histogram
}

func newPairMetrics(o *obs.Obs) pairMetrics {
	if o == nil || o.Reg == nil {
		return pairMetrics{}
	}
	return pairMetrics{
		delivered:   o.Reg.Counter("verify.pair.delivered"),
		unreachable: o.Reg.Counter("verify.pair.unreachable"),
		pairNs:      o.Reg.Histogram("verify.pair_ns"),
	}
}

func (m pairMetrics) count(reachable bool) {
	if reachable {
		m.delivered.Inc()
	} else {
		m.unreachable.Inc()
	}
}
