package verify

import (
	"fmt"

	"symnet/internal/core"
	"symnet/internal/dist"
	"symnet/internal/sefl"
)

// AllPairsDistReport is the distributed face of AllPairsReport: the same
// reachability matrix, computed from worker summaries instead of live
// results. Live paths (solver contexts, packet memory) stay in the worker
// processes, so follow-up field queries are not available — Summaries holds
// what crossed the wire (statuses, histories, solver statistics, constraint
// fingerprints).
type AllPairsDistReport struct {
	Sources []core.PortRef
	Targets []string
	// Reachable[s][t] reports whether any delivered path from Sources[s]
	// ends at Targets[t]; PathCount[s][t] counts them.
	Reachable [][]bool
	PathCount [][]int
	// Summaries holds the per-source run summaries, aligned with Sources.
	Summaries []*dist.Summary
}

// Pairs returns the number of (source, target) pairs answered.
func (r *AllPairsDistReport) Pairs() int { return len(r.Sources) * len(r.Targets) }

// AllPairsReachabilityDist answers the all-pairs reachability matrix by
// sharding the per-source runs across procs worker subprocesses (see
// dist.RunBatch); procs <= 0 answers in-process. The matrix is byte-identical
// to AllPairsReachability's for every (procs, workersPerProc) pair — per-path
// last-hop positions are part of the deterministic summaries the property
// tests in internal/dist pin down.
func AllPairsReachabilityDist(net *core.Network, sources []core.PortRef, packet sefl.Instr, targets []string, opts core.Options, procs, workersPerProc int) (*AllPairsDistReport, error) {
	return AllPairsReachabilityDistConfig(net, sources, packet, targets, opts, dist.Config{
		Procs: procs, WorkersPerProc: workersPerProc, ShareSat: true,
	})
}

// AllPairsReachabilityDistConfig is AllPairsReachabilityDist with an explicit
// fleet configuration — TCP worker addresses, steal/retry policy, the full
// dist.Config surface. cfg.Obs defaults to opts.Obs. The matrix stays
// byte-identical to AllPairsReachability's for every fleet shape.
func AllPairsReachabilityDistConfig(net *core.Network, sources []core.PortRef, packet sefl.Instr, targets []string, opts core.Options, cfg dist.Config) (*AllPairsDistReport, error) {
	o := opts.Obs
	if cfg.Obs == nil {
		cfg.Obs = o
	}
	defer o.Span("solve", "allpairs-dist", -1)()
	pm := newPairMetrics(o)
	jobs := make([]dist.Job, len(sources))
	for i, src := range sources {
		jobs[i] = dist.Job{Name: src.String(), Inject: src, Packet: packet, Opts: opts}
	}
	results := dist.RunBatchConfig(net, jobs, cfg)
	rep := &AllPairsDistReport{
		Sources:   sources,
		Targets:   targets,
		Reachable: make([][]bool, len(sources)),
		PathCount: make([][]int, len(sources)),
		Summaries: make([]*dist.Summary, len(sources)),
	}
	for i, jr := range results {
		if jr.Err != nil {
			return nil, fmt.Errorf("verify: all-pairs source %s: %w", jr.Name, jr.Err)
		}
		rep.Summaries[i] = jr.Summary
		rep.Reachable[i] = make([]bool, len(targets))
		rep.PathCount[i] = make([]int, len(targets))
		for t, target := range targets {
			pt := pm.pairNs.Start()
			n := jr.Summary.DeliveredAt(target, -1)
			pt.Stop()
			rep.Reachable[i][t] = n > 0
			rep.PathCount[i][t] = n
			pm.count(n > 0)
		}
	}
	return rep, nil
}
