package verify

import (
	"testing"

	"symnet/internal/core"
	"symnet/internal/sefl"
)

func passthroughNet(t *testing.T) (*core.Network, core.PortRef) {
	t.Helper()
	net := core.NewNetwork()
	a := net.AddElement("A", "fwd", 1, 1)
	a.SetInCode(0, sefl.Seq(
		sefl.Constrain{C: sefl.Eq(sefl.Ref{LV: sefl.TcpDst}, sefl.C(80))},
		sefl.Forward{Port: 0},
	))
	b := net.AddElement("B", "sink", 1, 0)
	b.SetInCode(0, sefl.NoOp{})
	net.MustLink("A", 0, "B", 0)
	return net, core.PortRef{Elem: "A", Port: 0}
}

func TestReachabilityReport(t *testing.T) {
	net, inj := passthroughNet(t)
	rep, err := Reachability(net, inj, sefl.NewTCPPacket(), "B", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reachable() || len(rep.Reached) != 1 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestFieldDomainAndValue(t *testing.T) {
	net, inj := passthroughNet(t)
	rep, err := Reachability(net, inj, sefl.NewTCPPacket(), "B", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Reached[0]
	dom, err := FieldDomain(p, sefl.TcpDst)
	if err != nil {
		t.Fatal(err)
	}
	if dom.Size() != 1 || !dom.Contains(80) {
		t.Fatalf("TcpDst domain %v", dom)
	}
	if _, err := FieldValue(p, sefl.Hdr{Off: sefl.FromTag("NOPE", 0), Size: 8}); err == nil {
		t.Fatal("missing tag must error")
	}
}

func TestFieldEndToEndRewrite(t *testing.T) {
	net := core.NewNetwork()
	a := net.AddElement("A", "rewrite", 1, 1)
	a.SetInCode(0, sefl.Seq(
		sefl.Assign{LV: sefl.TcpDst, E: sefl.C(22)},
		sefl.Forward{Port: 0},
	))
	b := net.AddElement("B", "sink", 1, 0)
	b.SetInCode(0, sefl.NoOp{})
	net.MustLink("A", 0, "B", 0)
	res, err := core.Run(net, core.PortRef{Elem: "A", Port: 0}, sefl.NewTCPPacket(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := res.DeliveredAt("B", 0)[0]
	inv, err := FieldInvariant(p, sefl.TcpDst)
	if err != nil {
		t.Fatal(err)
	}
	if inv {
		t.Fatal("rewritten field must not be invariant")
	}
	e2e, err := FieldEndToEnd(p, sefl.TcpDst)
	if err != nil {
		t.Fatal(err)
	}
	if e2e {
		t.Fatal("rewritten symbolic field cannot provably equal its original")
	}
	// An untouched field is both invariant and end-to-end equal.
	inv, _ = FieldInvariant(p, sefl.TcpSrc)
	e2e, _ = FieldEndToEnd(p, sefl.TcpSrc)
	if !inv || !e2e {
		t.Fatal("untouched field must be invariant")
	}
}

func TestFieldEndToEndForcedEqual(t *testing.T) {
	// Save, overwrite, restore: syntactically different final term that is
	// provably equal to the original (metadata round-trip).
	net := core.NewNetwork()
	a := net.AddElement("A", "saver", 1, 1)
	a.SetInCode(0, sefl.Seq(
		sefl.Allocate{LV: sefl.Meta{Name: "save"}, Size: 16},
		sefl.Assign{LV: sefl.Meta{Name: "save"}, E: sefl.Ref{LV: sefl.TcpDst}},
		sefl.Assign{LV: sefl.TcpDst, E: sefl.C(9)},
		sefl.Assign{LV: sefl.TcpDst, E: sefl.Ref{LV: sefl.Meta{Name: "save"}}},
		sefl.Forward{Port: 0},
	))
	b := net.AddElement("B", "sink", 1, 0)
	b.SetInCode(0, sefl.NoOp{})
	net.MustLink("A", 0, "B", 0)
	res, err := core.Run(net, core.PortRef{Elem: "A", Port: 0}, sefl.NewTCPPacket(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := res.DeliveredAt("B", 0)[0]
	inv, _ := FieldInvariant(p, sefl.TcpDst)
	if inv {
		t.Fatal("rewriting makes the history non-constant")
	}
	e2e, err := FieldEndToEnd(p, sefl.TcpDst)
	if err != nil {
		t.Fatal(err)
	}
	if !e2e {
		t.Fatal("restored field must be provably equal end to end")
	}
}

func TestConcretePacket(t *testing.T) {
	net, inj := passthroughNet(t)
	rep, err := Reachability(net, inj, sefl.NewTCPPacket(), "B", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := ConcretePacket(rep.Reached[0], []sefl.Hdr{sefl.TcpDst, sefl.IPSrc})
	if err != nil {
		t.Fatal(err)
	}
	if vals["TcpDst"] != 80 {
		t.Fatalf("concrete TcpDst = %d", vals["TcpDst"])
	}
	if _, ok := vals["IPSrc"]; !ok {
		t.Fatal("IPSrc missing from concrete packet")
	}
}

func TestLoopsAndFailures(t *testing.T) {
	net := core.NewNetwork()
	for _, n := range []string{"A", "B"} {
		e := net.AddElement(n, "fwd", 1, 1)
		e.SetInCode(0, sefl.Forward{Port: 0})
	}
	net.MustLink("A", 0, "B", 0)
	net.MustLink("B", 0, "A", 0)
	res, err := core.Run(net, core.PortRef{Elem: "A", Port: 0}, sefl.NewTCPPacket(), core.Options{Loop: core.LoopFull})
	if err != nil {
		t.Fatal(err)
	}
	if len(Loops(res)) != 1 || len(Failures(res)) != 0 {
		t.Fatalf("loops=%d failures=%d", len(Loops(res)), len(Failures(res)))
	}
}
