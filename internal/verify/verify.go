// Package verify provides the network-verification queries of §6 of the
// paper on top of the core engine: reachability, field invariance, header
// visibility, and loop reporting. (Loop *detection* itself runs inside the
// engine; this package interprets its results.)
package verify

import (
	"fmt"

	"symnet/internal/core"
	"symnet/internal/expr"
	"symnet/internal/sefl"
	"symnet/internal/solver"
)

// Reachability runs a symbolic packet from inject and reports the paths
// that reach any port of target. It is the paper's basic query: inspect the
// values and constraints of header variables at each reached port.
func Reachability(net *core.Network, inject core.PortRef, packet sefl.Instr, target string, opts core.Options) (*Report, error) {
	res, err := core.Run(net, inject, packet, opts)
	if err != nil {
		return nil, err
	}
	return NewReport(res, target), nil
}

// Report wraps a run result with a reachability target.
type Report struct {
	Result  *core.Result
	Target  string
	Reached []*core.Path
}

// NewReport extracts the delivered paths ending at the target element.
func NewReport(res *core.Result, target string) *Report {
	r := &Report{Result: res, Target: target}
	r.Reached = res.DeliveredAt(target, -1)
	return r
}

// Reachable reports whether any path reached the target.
func (r *Report) Reachable() bool { return len(r.Reached) > 0 }

// resolveHdr resolves a header shorthand against a path's final tag values.
func resolveHdr(p *core.Path, h sefl.Hdr) (int64, error) {
	if h.Off.Tag == "" {
		return h.Off.Rel, nil
	}
	base, ok := p.Mem.Tag(h.Off.Tag)
	if !ok {
		return 0, fmt.Errorf("verify: tag %q not set on path %d", h.Off.Tag, p.ID)
	}
	return base + h.Off.Rel, nil
}

// FieldValue returns the final symbolic value of a header field on a path.
func FieldValue(p *core.Path, h sefl.Hdr) (expr.Lin, error) {
	off, err := resolveHdr(p, h)
	if err != nil {
		return expr.Lin{}, err
	}
	return p.Mem.ReadHdr(off, h.Size)
}

// FieldDomain returns the set of values a header field can take at the end
// of a path, under the path's constraints.
func FieldDomain(p *core.Path, h sefl.Hdr) (*solver.IntervalSet, error) {
	v, err := FieldValue(p, h)
	if err != nil {
		return nil, err
	}
	return p.Ctx.Domain(v), nil
}

// FieldInvariant reports whether a header field was never modified along the
// path: every recorded assignment is the same term. This is the paper's
// invariance check via the per-field value history.
func FieldInvariant(p *core.Path, h sefl.Hdr) (bool, error) {
	off, err := resolveHdr(p, h)
	if err != nil {
		return false, err
	}
	hist, err := p.Mem.HdrHistory(off, h.Size)
	if err != nil {
		return false, err
	}
	if len(hist) == 0 {
		return false, fmt.Errorf("verify: field %s never assigned", h)
	}
	first := hist[0]
	for _, v := range hist[1:] {
		if !v.Equal(first) {
			return false, nil
		}
	}
	return true, nil
}

// FieldEndToEnd reports whether the field's final value provably equals its
// first (injected) value: either syntactically, or forced by the path
// constraints (checked by asking the solver whether first != last is
// satisfiable).
func FieldEndToEnd(p *core.Path, h sefl.Hdr) (bool, error) {
	off, err := resolveHdr(p, h)
	if err != nil {
		return false, err
	}
	hist, err := p.Mem.HdrHistory(off, h.Size)
	if err != nil {
		return false, err
	}
	if len(hist) == 0 {
		return false, fmt.Errorf("verify: field %s never assigned", h)
	}
	first, last := hist[0], hist[len(hist)-1]
	if first.Equal(last) {
		return true, nil
	}
	// Ask the solver whether first != last is satisfiable under the path
	// constraints; if not, the values are provably equal end to end.
	ctx := p.Ctx.Clone()
	if !ctx.Add(expr.NewCmp(expr.Ne, first, last)) {
		return true, nil
	}
	return !ctx.Sat(), nil
}

// Visible reports whether the current value of field h on path p is the
// same term the source wrote (the paper's header-visibility test: do
// firewalls and endhosts see the same headers?).
func Visible(p *core.Path, h sefl.Hdr, source expr.Lin) (bool, error) {
	v, err := FieldValue(p, h)
	if err != nil {
		return false, err
	}
	return v.Equal(source), nil
}

// Loops returns the looped paths of a result.
func Loops(res *core.Result) []*core.Path { return res.ByStatus(core.Looped) }

// Failures returns the failed paths of a result.
func Failures(res *core.Result) []*core.Path { return res.ByStatus(core.Failed) }

// ConcretePacket solves a path's constraints into concrete values for the
// listed header fields (the ATPG-style test-packet generation of §8.3).
func ConcretePacket(p *core.Path, fields []sefl.Hdr) (map[string]uint64, error) {
	model, ok := p.Ctx.Model()
	if !ok {
		return nil, fmt.Errorf("verify: path %d constraints unsatisfiable", p.ID)
	}
	out := make(map[string]uint64, len(fields))
	for _, h := range fields {
		v, err := FieldValue(p, h)
		if err != nil {
			return nil, err
		}
		if c, ok := v.ConstVal(); ok {
			out[h.Name] = c
			continue
		}
		// Symbols the solver never saw are unconstrained: any value
		// satisfies the path, so default to zero.
		base := model[v.Sym]
		out[h.Name] = (base + v.Add) & expr.Mask(v.Width)
	}
	return out, nil
}
