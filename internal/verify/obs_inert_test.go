package verify_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"symnet/internal/core"
	"symnet/internal/datasets"
	"symnet/internal/obs"
	"symnet/internal/sefl"
	"symnet/internal/verify"
)

// canonInProcess renders an in-process all-pairs report to comparable bytes:
// the reachability matrix plus every path's status, failure message, and
// port history.
func canonInProcess(t *testing.T, rep *verify.AllPairsReport) string {
	t.Helper()
	type pathRow struct {
		ID      int
		Status  string
		FailMsg string
		Ports   []string
	}
	var paths []pathRow
	for _, res := range rep.Results {
		for _, p := range res.Paths {
			row := pathRow{ID: p.ID, Status: p.Status.String(), FailMsg: p.FailMsg}
			for _, h := range p.History() {
				row.Ports = append(row.Ports, h.String())
			}
			paths = append(paths, row)
		}
	}
	b, err := json.Marshal(map[string]any{
		"reachable": rep.Reachable, "counts": rep.PathCount, "paths": paths,
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// canonDist renders a distributed all-pairs report to comparable bytes via
// the summaries that crossed the wire.
func canonDist(t *testing.T, rep *verify.AllPairsDistReport) string {
	t.Helper()
	b, err := json.Marshal(map[string]any{
		"reachable": rep.Reachable, "counts": rep.PathCount, "summaries": rep.Summaries,
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// withObs returns opts with a fresh registry and JSONL tracer attached, plus
// the registry and trace path for post-run inspection.
func withObs(t *testing.T, opts core.Options) (core.Options, *obs.Registry, string) {
	t.Helper()
	reg := obs.NewRegistry()
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	tf, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tf.Close() })
	opts.Obs = obs.New(reg, obs.NewTracer(tf))
	return opts, reg, tracePath
}

// TestObservabilityDoesNotPerturbResults is the inertness property the obs
// package promises: attaching a metrics registry and a span tracer changes
// no result bytes, at any worker count and on both the in-process and
// distributed all-pairs paths. It is the test-suite twin of the CI step that
// diffs symbench -stable output with and without -metrics/-trace-out.
func TestObservabilityDoesNotPerturbResults(t *testing.T) {
	d := datasets.NewDepartment(datasets.DepartmentConfig{NumAccessSwitches: 3, HostsPerSwitch: 8, Routes: 12, Seed: 5})
	srcs, targets := d.AllPairs()
	opts := core.Options{MaxHops: 64}

	base, err := verify.AllPairsReachability(d.Net, srcs, sefl.NewTCPPacket(), targets, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := canonInProcess(t, base)

	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			oopts, reg, tracePath := withObs(t, opts)
			rep, err := verify.AllPairsReachability(d.Net, srcs, sefl.NewTCPPacket(), targets, oopts, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got := canonInProcess(t, rep); got != want {
				t.Errorf("results with obs attached differ from baseline\n got: %.300s\nwant: %.300s", got, want)
			}
			// Sanity that observability was actually live, not silently nil:
			// the per-pair counters and at least one span must have landed.
			snap := reg.Snapshot()
			pairs := snap.Counters["verify.pair.delivered"] + snap.Counters["verify.pair.unreachable"]
			if pairs != int64(rep.Pairs()) {
				t.Errorf("verify.pair counters = %d, want %d", pairs, rep.Pairs())
			}
			if info, err := os.Stat(tracePath); err != nil || info.Size() == 0 {
				t.Errorf("trace file empty (err=%v)", err)
			}
		})
	}

	distBase, err := verify.AllPairsReachabilityDist(d.Net, srcs, sefl.NewTCPPacket(), targets, opts, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	distWant := canonDist(t, distBase)
	procsGrid := []int{0, 2}
	if testing.Short() {
		procsGrid = []int{0}
	}
	for _, procs := range procsGrid {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			oopts, _, _ := withObs(t, opts)
			rep, err := verify.AllPairsReachabilityDist(d.Net, srcs, sefl.NewTCPPacket(), targets, oopts, procs, 2)
			if err != nil {
				t.Fatal(err)
			}
			if got := canonDist(t, rep); got != distWant {
				t.Errorf("procs=%d with obs differs from procs=0 baseline", procs)
			}
		})
	}
}
