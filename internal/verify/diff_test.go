package verify

import (
	"reflect"
	"testing"

	"symnet/internal/core"
)

func diffFixture() *AllPairsReport {
	return &AllPairsReport{
		Sources:   []core.PortRef{{Elem: "a", Port: 0}, {Elem: "b", Port: 1}},
		Targets:   []string{"x", "y", "z"},
		Reachable: [][]bool{{true, false, true}, {false, true, true}},
		PathCount: [][]int{{1, 0, 2}, {0, 3, 1}},
		Results:   []*core.Result{nil, nil},
	}
}

func TestCloneShallowAliasesRows(t *testing.T) {
	r := diffFixture()
	c := r.CloneShallow()
	if &c.Reachable[0][0] != &r.Reachable[0][0] || &c.PathCount[1][0] != &r.PathCount[1][0] {
		t.Fatal("clone rows do not alias the original")
	}
	// Replacing a clone row leaves the original untouched.
	c.Reachable[0] = []bool{false, false, false}
	if !r.Reachable[0][0] {
		t.Fatal("row replacement on the clone mutated the original")
	}
}

func TestDiffReports(t *testing.T) {
	old := diffFixture()

	// Pure COW clone: all rows alias, diff is empty.
	if d := DiffReports(old, old.CloneShallow()); len(d) != 0 {
		t.Fatalf("aliased clone diffed: %+v", d)
	}

	// Replace one row with a flip and a path-count change.
	next := old.CloneShallow()
	next.Reachable[0] = []bool{true, true, true} // y flips false->true
	next.PathCount[0] = []int{1, 4, 3}           // z count 2->3
	got := DiffReports(old, next)
	want := []CellDelta{
		{Src: 0, Dst: 1, FromReachable: false, ToReachable: true, FromPaths: 0, ToPaths: 4},
		{Src: 0, Dst: 2, FromReachable: true, ToReachable: true, FromPaths: 2, ToPaths: 3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("diff = %+v, want %+v", got, want)
	}
	if !got[0].Flipped() || got[1].Flipped() {
		t.Fatalf("Flipped verdicts wrong: %+v", got)
	}

	// Replaced-but-identical row: content comparison finds nothing.
	same := old.CloneShallow()
	same.Reachable[1] = append([]bool(nil), old.Reachable[1]...)
	same.PathCount[1] = append([]int(nil), old.PathCount[1]...)
	if d := DiffReports(old, same); len(d) != 0 {
		t.Fatalf("identical replaced row diffed: %+v", d)
	}

	// Shape mismatches are undefined: nil out.
	short := diffFixture()
	short.Reachable = short.Reachable[:1]
	if DiffReports(old, short) != nil || DiffReports(short, old) != nil {
		t.Fatal("shape mismatch produced a diff")
	}
	if DiffReports(nil, old) != nil || DiffReports(old, nil) != nil {
		t.Fatal("nil report produced a diff")
	}

	// Zero-width rows neither panic nor diff.
	empty := &AllPairsReport{Reachable: [][]bool{{}}, PathCount: [][]int{{}}}
	if d := DiffReports(empty, &AllPairsReport{Reachable: [][]bool{{}}, PathCount: [][]int{{}}}); d != nil {
		t.Fatalf("empty rows diffed: %+v", d)
	}
}
