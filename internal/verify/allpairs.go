package verify

import (
	"fmt"

	"symnet/internal/core"
	"symnet/internal/sched"
	"symnet/internal/sefl"
)

// AllPairsReport answers "which sources reach which targets?" for a set of
// injection ports and target elements — the workload shape of batch
// verification and repair-and-verify tools, which re-run many reachability
// queries per candidate configuration change.
type AllPairsReport struct {
	Sources []core.PortRef
	Targets []string
	// Reachable[s][t] reports whether any delivered path from Sources[s]
	// ends at Targets[t].
	Reachable [][]bool
	// PathCount[s][t] is the number of such paths.
	PathCount [][]int
	// Results holds the per-source run results, aligned with Sources, for
	// follow-up queries (ConcretePacket, FieldEndToEnd, ...).
	Results []*core.Result
}

// ReachedPaths returns the delivered paths from Sources[s] to Targets[t].
func (r *AllPairsReport) ReachedPaths(s, t int) []*core.Path {
	return r.Results[s].DeliveredAt(r.Targets[t], -1)
}

// Pairs returns the number of (source, target) pairs answered.
func (r *AllPairsReport) Pairs() int { return len(r.Sources) * len(r.Targets) }

// AllPairsReachability injects the packet at every source and reports, for
// each (source, target) pair, whether the target is reachable. One symbolic
// run per source answers all targets for that source; runs are fanned across
// a bounded worker pool (workers <= 0 selects GOMAXPROCS). The report is
// deterministic: results are merged in source order, and each run is
// identical to a standalone core.Run.
func AllPairsReachability(net *core.Network, sources []core.PortRef, packet sefl.Instr, targets []string, opts core.Options, workers int) (*AllPairsReport, error) {
	o := opts.Obs
	defer o.Span("solve", "allpairs", -1)()
	pm := newPairMetrics(o)
	jobs := make([]sched.Job, len(sources))
	for i, src := range sources {
		jobs[i] = sched.Job{Name: src.String(), Inject: src, Packet: packet, Opts: opts}
	}
	results := sched.RunBatchObs(net, jobs, workers, o)
	rep := &AllPairsReport{
		Sources:   sources,
		Targets:   targets,
		Reachable: make([][]bool, len(sources)),
		PathCount: make([][]int, len(sources)),
		Results:   make([]*core.Result, len(sources)),
	}
	for i, jr := range results {
		if jr.Err != nil {
			return nil, fmt.Errorf("verify: all-pairs source %s: %w", jr.Name, jr.Err)
		}
		rep.Results[i] = jr.Result
		rep.Reachable[i] = make([]bool, len(targets))
		rep.PathCount[i] = make([]int, len(targets))
		for t, target := range targets {
			pt := pm.pairNs.Start()
			paths := jr.Result.DeliveredAt(target, -1)
			pt.Stop()
			rep.Reachable[i][t] = len(paths) > 0
			rep.PathCount[i][t] = len(paths)
			pm.count(len(paths) > 0)
		}
	}
	return rep, nil
}
