package verify_test

import (
	"testing"

	"symnet/internal/core"
	"symnet/internal/datasets"
	"symnet/internal/sched"
	"symnet/internal/sefl"
	"symnet/internal/verify"
)

func deptSources(d *datasets.Department) []core.PortRef {
	var srcs []core.PortRef
	for _, asw := range d.AccessSwitches {
		srcs = append(srcs, core.PortRef{Elem: asw, Port: 1})
	}
	srcs = append(srcs, core.PortRef{Elem: "exit", Port: 1})
	return srcs
}

func TestAllPairsReachabilityDepartment(t *testing.T) {
	cfg := datasets.DepartmentConfig{NumAccessSwitches: 3, HostsPerSwitch: 24, Routes: 40, Seed: 5}
	targets := []string{"internet", "mgmt"}
	for _, fixed := range []bool{false, true} {
		cfg.Fixed = fixed
		d := datasets.NewDepartment(cfg)
		srcs := deptSources(d)
		rep, err := verify.AllPairsReachability(d.Net, srcs, sefl.NewTCPPacket(), targets,
			core.Options{MaxHops: 64}, 8)
		if err != nil {
			t.Fatalf("fixed=%v: %v", fixed, err)
		}
		if rep.Pairs() != len(srcs)*len(targets) {
			t.Fatalf("pairs = %d", rep.Pairs())
		}
		// Every office source reaches the Internet through the ASA.
		for s := range d.AccessSwitches {
			if !rep.Reachable[s][0] {
				t.Errorf("fixed=%v: %s cannot reach internet", fixed, srcs[s])
			}
		}
		// The inbound management hole (§8.5): open before the fix, closed
		// after the admins update the static routes.
		inbound := len(srcs) - 1
		if got := rep.Reachable[inbound][1]; got == fixed {
			t.Errorf("fixed=%v: inbound->mgmt reachable = %v", fixed, got)
		}
	}
}

// TestAllPairsAgreesWithSingleRuns cross-checks the batched report against
// individual Reachability queries.
func TestAllPairsAgreesWithSingleRuns(t *testing.T) {
	d := datasets.NewDepartment(datasets.DepartmentConfig{
		NumAccessSwitches: 3, HostsPerSwitch: 24, Routes: 40, Seed: 5})
	srcs := deptSources(d)
	targets := []string{"internet", "mgmt", "labs"}
	opts := core.Options{MaxHops: 64}
	rep, err := verify.AllPairsReachability(d.Net, srcs, sefl.NewTCPPacket(), targets, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	for s, src := range srcs {
		for ti, target := range targets {
			single, err := verify.Reachability(d.Net, src, sefl.NewTCPPacket(), target, opts)
			if err != nil {
				t.Fatal(err)
			}
			if single.Reachable() != rep.Reachable[s][ti] {
				t.Errorf("%s->%s: batch says %v, single run says %v",
					src, target, rep.Reachable[s][ti], single.Reachable())
			}
			if len(single.Reached) != rep.PathCount[s][ti] {
				t.Errorf("%s->%s: batch counts %d paths, single run %d",
					src, target, rep.PathCount[s][ti], len(single.Reached))
			}
		}
	}
}

// TestSolverQueriesOnParallelPaths exercises ConcretePacket and
// FieldEndToEnd on paths produced by the parallel engine: per-path solver
// contexts must remain independent and satisfiable regardless of which
// worker built them.
func TestSolverQueriesOnParallelPaths(t *testing.T) {
	net := datasets.NewSplitTCP(datasets.SplitTCPConfig{ProxyRewritesMAC: true})
	res, err := sched.Run(net, core.PortRef{Elem: "ap", Port: 0},
		datasets.SplitTCPClientPacket(), core.Options{MaxHops: 64}, 8)
	if err != nil {
		t.Fatal(err)
	}
	delivered := res.ByStatus(core.Delivered)
	if len(delivered) == 0 {
		t.Fatal("no delivered paths")
	}
	fields := []sefl.Hdr{sefl.IPSrc, sefl.IPDst, sefl.TcpSrc, sefl.TcpDst, sefl.IPLen}
	for _, p := range delivered {
		pkt, err := verify.ConcretePacket(p, fields)
		if err != nil {
			t.Fatalf("path %d: ConcretePacket: %v", p.ID, err)
		}
		// The client packet constrains 40 <= IPLen <= 9000; any concrete
		// witness must honor it.
		if l := pkt["IPLen"]; l < 40 || l > 9000 {
			t.Errorf("path %d: concrete IPLen %d outside [40,9000]", p.ID, l)
		}
		// The round trip crosses the mirror exactly once, which swaps the
		// IP addresses: IPSrc must NOT be end-to-end invariant, while
		// TcpDst (untouched by every box on the path) must be.
		if p.Last().Elem == "client" {
			swapped, err := verify.FieldEndToEnd(p, sefl.IPSrc)
			if err != nil {
				t.Fatalf("path %d: FieldEndToEnd(IPSrc): %v", p.ID, err)
			}
			if swapped {
				t.Errorf("path %d: IPSrc end-to-end invariant despite the mirror swap", p.ID)
			}
			kept, err := verify.FieldEndToEnd(p, sefl.TcpDst)
			if err != nil {
				t.Fatalf("path %d: FieldEndToEnd(TcpDst): %v", p.ID, err)
			}
			if !kept {
				t.Errorf("path %d: TcpDst not end-to-end invariant", p.ID)
			}
		}
	}

	// The same queries must give the same answers on the sequential run.
	seq, err := core.Run(net, core.PortRef{Elem: "ap", Port: 0},
		datasets.SplitTCPClientPacket(), core.Options{MaxHops: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Paths) != len(res.Paths) {
		t.Fatalf("path count differs: seq %d, parallel %d", len(seq.Paths), len(res.Paths))
	}
	for i := range seq.Paths {
		sp, pp := seq.Paths[i], res.Paths[i]
		spkt, err1 := verify.ConcretePacket(sp, fields)
		ppkt, err2 := verify.ConcretePacket(pp, fields)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("path %d: ConcretePacket err seq=%v par=%v", i, err1, err2)
		}
		for _, f := range fields {
			if spkt[f.Name] != ppkt[f.Name] {
				t.Errorf("path %d field %s: seq %d, parallel %d", i, f.Name, spkt[f.Name], ppkt[f.Name])
			}
		}
	}
}
