// Wire codec for compiled programs. The distributed runner ships each
// element-port program to worker processes so they execute the exact IR the
// coordinator compiled instead of recompiling from the AST. Most IR nodes
// (Op scalars, LV, CExpr, CondInput, Seg) are concrete exported structs and
// travel as-is; the three non-concrete pieces are handled explicitly:
//
//   - Op.Ins (a sefl.Instr interface, needed for lazy trace lines and
//     failure messages) crosses as a sefl.WireInstr;
//   - condition nodes are hash-consed within a program (structurally equal
//     guards share one *CCond, and with it one evaluation memo), so the
//     codec flattens the unique nodes into an indexed table — children
//     before parents — and ops reference indices, restoring the exact
//     sharing on decode;
//   - For ops carry their pattern plus the serialized body reference of the
//     originating sefl.For (see sefl.RegisterForBody); the decoder rebuilds
//     the ForOp through the same constructor the compiler uses, so bad
//     patterns fail with byte-identical messages.
//
// Decode(Encode(p)) executes identically to p — same results, statistics,
// traces and symbol order — pinned by the codec tests here and the
// distributed property tests in internal/dist.
package prog

import (
	"fmt"
	"regexp"

	"symnet/internal/expr"
	"symnet/internal/memory"
	"symnet/internal/sefl"
)

// newForOp builds the runtime payload of an OpFor. The compiler and the
// decoder share it so pattern-compilation behavior (including the exact
// bad-pattern failure message) cannot drift between local and shipped
// programs.
func newForOp(pattern string, body func(sefl.Meta) sefl.Instr) *ForOp {
	f := &ForOp{Pattern: pattern, Body: body}
	re, err := regexp.Compile(pattern)
	if err != nil {
		f.Err = fmt.Sprintf("For: bad pattern %q: %v", pattern, err)
	} else {
		f.Re = re
	}
	return f
}

// WireProgram is the concrete form of one Program.
type WireProgram struct {
	Elem             string
	Instance         int
	Label            string
	Entry            SegID
	Segs             []Seg
	Ops              []WireOp
	Conds, CondsSeen int
	// CondTab holds the program's unique condition nodes, children before
	// parents; WireOp.C and WireCCond.Cs/C reference indices into it.
	CondTab []WireCCond
}

// WireOp is the concrete form of one Op. C is an index into the program's
// condition table (-1 when the op carries no condition).
type WireOp struct {
	Kind  OpKind
	Ins   *sefl.WireInstr
	LV    LV
	Size  int
	E     *CExpr
	C     int32
	Msg   string
	Tag   string
	Port  int
	Ports []int
	Then  SegID
	Else  SegID
	Sub   SegID
	// For ops: the loop pattern plus the registered body reference.
	HasFor     bool
	ForPattern string
	ForRef     string
	ForArg     string
}

// WireCCond is the concrete form of one condition node. Child conditions
// (And/Or members, Not operand) are table indices. A CIntervalTable node
// ships no child indices: its disjuncts cross the wire as the packed row
// stream (ITRows) — the frame-size win this lowering exists for — and the
// decoder rebuilds children and span tables through the same construction
// the compiler uses, so the decoded node is byte-identical. (A child shared
// between a table and an unrelated op decodes into two equal nodes instead
// of one shared node; behavior is unaffected.)
type WireCCond struct {
	Kind       CondKind
	FP         expr.Fp
	HasStatic  bool
	Static     *expr.WireExprCond
	StaticErr  string
	Words      int
	HasSym     bool
	Memoizable bool
	Inputs     []CondInput
	B          bool
	Op         expr.CmpOp
	L, R       *CExpr
	Val, Mask  uint64
	PLen, PW   int
	Key        memory.MetaKey
	Cs         []int32
	C          int32
	// Interval-table payload (Kind == CIntervalTable).
	ITF       LV
	ITF2      LV
	ITGrouped bool
	ITRows    []uint64
}

// EncodeProgram converts a compiled program to its wire form. It fails only
// when an instruction cannot be serialized (a For body built from a bare
// closure rather than a registered constructor).
func EncodeProgram(p *Program) (*WireProgram, error) {
	w := &WireProgram{
		Elem:      p.Elem,
		Instance:  p.Instance,
		Label:     p.Label,
		Entry:     p.Entry,
		Segs:      p.Segs,
		Conds:     p.Conds,
		CondsSeen: p.CondsSeen,
		Ops:       make([]WireOp, len(p.Ops)),
	}
	idx := make(map[*CCond]int32)
	for i := range p.Ops {
		op := &p.Ops[i]
		wop := WireOp{
			Kind: op.Kind, LV: op.LV, Size: op.Size, E: op.E, C: -1,
			Msg: op.Msg, Tag: op.Tag, Port: op.Port, Ports: op.Ports,
			Then: op.Then, Else: op.Else, Sub: op.Sub,
		}
		if op.Ins != nil {
			ins, err := sefl.EncodeInstr(op.Ins)
			if err != nil {
				return nil, fmt.Errorf("prog: encode %s op %d: %w", p.Label, i, err)
			}
			wop.Ins = ins
		}
		if op.C != nil {
			ci, err := encodeCond(w, idx, op.C)
			if err != nil {
				return nil, fmt.Errorf("prog: encode %s op %d: %w", p.Label, i, err)
			}
			wop.C = ci
		}
		if op.For != nil {
			f, ok := op.Ins.(sefl.For)
			if !ok || f.Ref == "" {
				return nil, fmt.Errorf("prog: encode %s op %d: For(%q) body is a bare closure; build with sefl.NewFor", p.Label, i, op.For.Pattern)
			}
			wop.HasFor = true
			wop.ForPattern = op.For.Pattern
			wop.ForRef = f.Ref
			wop.ForArg = f.Arg
		}
		w.Ops[i] = wop
	}
	return w, nil
}

// encodeCond flattens one condition node (children first) into the table,
// deduplicating by pointer so shared nodes stay shared.
func encodeCond(w *WireProgram, idx map[*CCond]int32, c *CCond) (int32, error) {
	if i, ok := idx[c]; ok {
		return i, nil
	}
	wc := WireCCond{
		Kind: c.Kind, FP: c.FP, HasStatic: c.HasStatic, StaticErr: c.StaticErr,
		Words: c.Words, HasSym: c.HasSym, Memoizable: c.Memoizable,
		Inputs: c.Inputs, B: c.B, Op: c.Op, L: c.L, R: c.R,
		Val: c.Val, Mask: c.Mask, PLen: c.PLen, PW: c.PW, Key: c.Key,
		C: -1,
	}
	if c.HasStatic && c.StaticErr == "" {
		st, err := expr.EncodeCond(c.Static)
		if err != nil {
			return 0, err
		}
		wc.Static = st
	}
	if c.Kind == CIntervalTable && PackedWire {
		wc.ITF = c.IT.F
		wc.ITF2 = c.IT.F2
		wc.ITGrouped = c.IT.Grouped
		wc.ITRows = expr.PackGuardRows(c.IT.Rows)
		i := int32(len(w.CondTab))
		w.CondTab = append(w.CondTab, wc)
		idx[c] = i
		return i, nil
	}
	for _, sub := range c.Cs {
		si, err := encodeCond(w, idx, sub)
		if err != nil {
			return 0, err
		}
		wc.Cs = append(wc.Cs, si)
	}
	if c.C != nil {
		si, err := encodeCond(w, idx, c.C)
		if err != nil {
			return 0, err
		}
		wc.C = si
	}
	i := int32(len(w.CondTab))
	w.CondTab = append(w.CondTab, wc)
	idx[c] = i
	return i, nil
}

// DecodeProgram rebuilds a compiled program from its wire form. The result
// is immutable and concurrency-safe exactly like a freshly compiled program;
// evaluation memos and For-body caches start empty and warm up on first use.
func DecodeProgram(w *WireProgram) (*Program, error) {
	p := &Program{
		Elem:      w.Elem,
		Instance:  w.Instance,
		Label:     w.Label,
		Entry:     w.Entry,
		Segs:      w.Segs,
		Conds:     w.Conds,
		CondsSeen: w.CondsSeen,
		Ops:       make([]Op, len(w.Ops)),
	}
	conds := make([]*CCond, len(w.CondTab))
	// Lowered-guard children are rebuilt from row streams; one builder per
	// program so equal disjuncts across tables share nodes like compiler
	// output does.
	itb := &itBuilder{conds: make(map[expr.Fp][]*CCond)}
	for i := range w.CondTab {
		wc := &w.CondTab[i]
		c := &CCond{
			Kind: wc.Kind, FP: wc.FP, HasStatic: wc.HasStatic, StaticErr: wc.StaticErr,
			Words: wc.Words, HasSym: wc.HasSym, Memoizable: wc.Memoizable,
			Inputs: wc.Inputs, B: wc.B, Op: wc.Op, L: wc.L, R: wc.R,
			Val: wc.Val, Mask: wc.Mask, PLen: wc.PLen, PW: wc.PW, Key: wc.Key,
		}
		if wc.Kind == CIntervalTable && wc.ITRows != nil {
			rows, err := expr.UnpackGuardRows(wc.ITRows)
			if err != nil {
				return nil, fmt.Errorf("prog: decode %s cond %d: %w", w.Label, i, err)
			}
			it := &ITable{
				F: wc.ITF, W: wc.ITF.Size, Grouped: wc.ITGrouped,
				F2: wc.ITF2, W2: wc.ITF2.Size, Rows: rows,
			}
			buildITable(it)
			c.IT = it
			c.Cs = itb.children(it)
		}
		if wc.Static != nil {
			st, err := expr.DecodeCond(wc.Static)
			if err != nil {
				return nil, fmt.Errorf("prog: decode %s cond %d: %w", w.Label, i, err)
			}
			c.Static = st
		}
		for _, si := range wc.Cs {
			if si < 0 || int(si) >= i {
				return nil, fmt.Errorf("prog: decode %s: cond %d references out-of-order child %d", w.Label, i, si)
			}
			c.Cs = append(c.Cs, conds[si])
		}
		if wc.C >= 0 {
			if int(wc.C) >= i {
				return nil, fmt.Errorf("prog: decode %s: cond %d references out-of-order child %d", w.Label, i, wc.C)
			}
			c.C = conds[wc.C]
		}
		if c.Kind == CIntervalTable && c.IT == nil {
			// Tree-form wire (PackedWire disabled on the encoder): re-derive
			// the table from the decoded disjuncts.
			it := detectIntervalTable(c.Cs)
			if it == nil {
				return nil, fmt.Errorf("prog: decode %s: cond %d marked interval-table but disjuncts do not form one", w.Label, i)
			}
			buildITable(it)
			c.IT = it
		}
		conds[i] = c
	}
	for i := range w.Ops {
		wop := &w.Ops[i]
		op := Op{
			Kind: wop.Kind, LV: wop.LV, Size: wop.Size, E: wop.E,
			Msg: wop.Msg, Tag: wop.Tag, Port: wop.Port, Ports: wop.Ports,
			Then: wop.Then, Else: wop.Else, Sub: wop.Sub,
		}
		if wop.Ins != nil {
			ins, err := sefl.DecodeInstr(wop.Ins)
			if err != nil {
				return nil, fmt.Errorf("prog: decode %s op %d: %w", w.Label, i, err)
			}
			op.Ins = ins
		}
		if wop.C >= 0 {
			if int(wop.C) >= len(conds) {
				return nil, fmt.Errorf("prog: decode %s: op %d references missing cond %d", w.Label, i, wop.C)
			}
			op.C = conds[wop.C]
		}
		if wop.HasFor {
			f, ok := op.Ins.(sefl.For)
			if !ok {
				return nil, fmt.Errorf("prog: decode %s: For op %d without a For instruction", w.Label, i)
			}
			op.For = newForOp(wop.ForPattern, f.Body)
		}
		p.Ops[i] = op
	}
	return p, nil
}
