package prog

// White-box tests of the summary builder and its wire codec: verdicts (what
// summarizes, what falls back and why — with byte-stable reasons), the
// decision-DAG shape (rows multiply across branches while shared
// continuations keep the node count linear), the degenerate empty row, and
// codec round-trips plus byte-stable malformed-stream errors matching the
// program codec's conventions.

import (
	"fmt"
	"strings"
	"testing"

	"symnet/internal/sefl"
)

var (
	sumF0 = sefl.Hdr{Off: sefl.At(0), Size: 32, Name: "F0"}
	sumF1 = sefl.Hdr{Off: sefl.At(32), Size: 32, Name: "F1"}
)

func compileSum(ins sefl.Instr) *Program {
	return Compile(ins, "e", 0, "e.in[0]")
}

func TestSummarizeStraightLine(t *testing.T) {
	p := compileSum(sefl.Seq(
		sefl.Assign{LV: sumF0, E: sefl.C(1)},
		sefl.Forward{Port: 3},
	))
	s, reason := Summarize(p)
	if s == nil {
		t.Fatalf("unsummarizable: %s", reason)
	}
	if s.Rows != 1 || s.Nodes != 1 {
		t.Fatalf("Rows=%d Nodes=%d, want 1/1", s.Rows, s.Nodes)
	}
	if s.Steps != 2 {
		t.Fatalf("Steps=%d, want 2", s.Steps)
	}
	last := s.Root.Steps[len(s.Root.Steps)-1]
	if last.Op.Kind != OpForward || len(last.Fwd) != 1 || last.Fwd[0] != 3 {
		t.Fatalf("terminal step: kind=%d Fwd=%v, want Forward [3]", last.Op.Kind, last.Fwd)
	}
}

// TestSummarizeEmptyRow pins the degenerate case of the row-set
// generalization: a program with no operations summarizes to a single empty
// row (no guards, no rewrites, no successor ports).
func TestSummarizeEmptyRow(t *testing.T) {
	p := compileSum(sefl.Block{})
	s, reason := Summarize(p)
	if s == nil {
		t.Fatalf("unsummarizable: %s", reason)
	}
	if s.Rows != 1 || len(s.Root.Steps) != 0 || s.Root.Term != TermEnd {
		t.Fatalf("Rows=%d Steps=%d Term=%d, want one empty TermEnd row", s.Rows, len(s.Root.Steps), s.Root.Term)
	}
}

// TestSummarizeSharedContinuations pins the DAG sharing that keeps
// summaries small: k sequential branches yield 2^k guarded rows but only
// O(k) nodes, because both arms of every branch jump to one shared
// continuation node.
func TestSummarizeSharedContinuations(t *testing.T) {
	const k = 8
	var is []sefl.Instr
	for i := 0; i < k; i++ {
		is = append(is, sefl.If{
			C:    sefl.Eq(sefl.Ref{LV: sumF0}, sefl.C(uint64(i))),
			Then: sefl.Assign{LV: sumF1, E: sefl.C(uint64(i))},
			Else: sefl.NoOp{},
		})
	}
	is = append(is, sefl.Forward{Port: 0})
	s, reason := Summarize(compileSum(sefl.Seq(is...)))
	if s == nil {
		t.Fatalf("unsummarizable: %s", reason)
	}
	if want := int64(1) << k; s.Rows != want {
		t.Fatalf("Rows=%d, want %d", s.Rows, want)
	}
	if s.Nodes > 6*k {
		t.Fatalf("Nodes=%d for %d sequential branches — continuations are not shared", s.Nodes, k)
	}
}

func TestSummarizeForFallsBack(t *testing.T) {
	p := compileSum(sefl.Seq(
		sefl.For{Pattern: "^m", Body: func(k sefl.Meta) sefl.Instr {
			return sefl.Assign{LV: k, E: sefl.C(1)}
		}},
		sefl.Forward{Port: 0},
	))
	s, reason := Summarize(p)
	if s != nil {
		t.Fatal("For loop summarized; its iteration space is runtime metadata")
	}
	if reason != "For loop with a data-dependent iteration space" {
		t.Fatalf("reason = %q", reason)
	}
}

// TestSummarizeMintOrdering pins the fresh-symbol discipline: a mint inside
// a branch arm is fine (one state executes it, in the same position either
// way), but any mint downstream of a branch point is refused — the IR mints
// instruction-major across the branch's sibling states, an interleaving a
// row-at-a-time replay cannot reproduce.
func TestSummarizeMintOrdering(t *testing.T) {
	cond := sefl.Eq(sefl.Ref{LV: sumF0}, sefl.C(7))

	branchMint := compileSum(sefl.Seq(
		sefl.If{C: cond, Then: sefl.Assign{LV: sumF1, E: sefl.Symbolic{W: 32, Name: "s"}}, Else: sefl.NoOp{}},
		sefl.Forward{Port: 0},
	))
	if s, reason := Summarize(branchMint); s == nil {
		t.Fatalf("mint inside a branch arm should summarize: %s", reason)
	}

	contMint := compileSum(sefl.Seq(
		sefl.If{C: cond, Then: sefl.Assign{LV: sumF1, E: sefl.C(1)}, Else: sefl.NoOp{}},
		sefl.Assign{LV: sumF1, E: sefl.Symbolic{W: 32, Name: "s"}},
		sefl.Forward{Port: 0},
	))
	s, reason := Summarize(contMint)
	if s != nil {
		t.Fatal("mint downstream of a branch point summarized")
	}
	if reason != "fresh-symbol allocation downstream of a branch point" {
		t.Fatalf("reason = %q", reason)
	}

	// The same rule through a condition: constraining on a fresh symbol
	// mints during evaluation.
	condMint := compileSum(sefl.Seq(
		sefl.If{C: cond, Then: sefl.NoOp{}, Else: sefl.NoOp{}},
		sefl.Constrain{C: sefl.Eq(sefl.Symbolic{W: 32, Name: "s"}, sefl.C(3))},
		sefl.Forward{Port: 0},
	))
	if s, _ := Summarize(condMint); s != nil {
		t.Fatal("condition mint downstream of a branch point summarized")
	}

	// Straight-line mints before any branch replay in order and summarize.
	preMint := compileSum(sefl.Seq(
		sefl.Assign{LV: sumF1, E: sefl.Symbolic{W: 32, Name: "s"}},
		sefl.If{C: cond, Then: sefl.Forward{Port: 0}, Else: sefl.Forward{Port: 1}},
	))
	if s, reason := Summarize(preMint); s == nil {
		t.Fatalf("straight-line mint before the branch should summarize: %s", reason)
	}
}

func TestSummarizeNodeBudget(t *testing.T) {
	// Sequential branches with *distinct* trailing code defeat continuation
	// sharing enough to stay linear but large: push past the node budget
	// with sheer program size.
	var is []sefl.Instr
	for i := 0; i < MaxSummaryNodes; i++ {
		is = append(is, sefl.If{
			C:    sefl.Eq(sefl.Ref{LV: sumF0}, sefl.C(uint64(i))),
			Then: sefl.Assign{LV: sumF1, E: sefl.C(uint64(i))},
			Else: sefl.NoOp{},
		})
	}
	is = append(is, sefl.Forward{Port: 0})
	s, reason := Summarize(compileSum(sefl.Seq(is...)))
	if s != nil {
		t.Fatal("budget-busting program summarized")
	}
	if want := fmt.Sprintf("decision DAG exceeds %d nodes", MaxSummaryNodes); reason != want {
		t.Fatalf("reason = %q, want %q", reason, want)
	}
}

// sumShape renders the DAG structurally (op indices, terminators, sharing
// via node numbering) for round-trip comparison.
func sumShape(s *Summary) string {
	var b strings.Builder
	ids := make(map[*SumNode]int)
	var walk func(n *SumNode) int
	walk = func(n *SumNode) int {
		if id, ok := ids[n]; ok {
			return id
		}
		id := len(ids)
		ids[n] = id
		fmt.Fprintf(&b, "n%d:", id)
		for _, st := range n.Steps {
			fmt.Fprintf(&b, " %d", st.OpIdx)
		}
		switch n.Term {
		case TermEnd:
			b.WriteString(" end\n")
		case TermJump:
			fmt.Fprintf(&b, " jump@") // resolved below; jumps print after children
			b.WriteString("\n")
			fmt.Fprintf(&b, "n%d.next=n%d\n", id, walk(n.Next))
		case TermBranch:
			fmt.Fprintf(&b, " br(%d)\n", n.BrIdx)
			fmt.Fprintf(&b, "n%d.then=n%d\n", id, walk(n.Then))
			fmt.Fprintf(&b, "n%d.else=n%d\n", id, walk(n.Else))
		}
		return id
	}
	walk(s.Root)
	fmt.Fprintf(&b, "rows=%d steps=%d nodes=%d\n", s.Rows, s.Steps, s.Nodes)
	return b.String()
}

func TestSummaryCodecRoundTrip(t *testing.T) {
	var is []sefl.Instr
	for i := 0; i < 4; i++ {
		is = append(is, sefl.If{
			C:    sefl.Eq(sefl.Ref{LV: sumF0}, sefl.C(uint64(i))),
			Then: sefl.Assign{LV: sumF1, E: sefl.C(uint64(i))},
			Else: sefl.NoOp{},
		})
	}
	is = append(is, sefl.Fork{Ports: []int{0, 2}})
	p := compileSum(sefl.Seq(is...))
	s, reason := Summarize(p)
	if s == nil {
		t.Fatalf("unsummarizable: %s", reason)
	}
	w, err := EncodeSummary(s)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodeSummary(p, w)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got, want := sumShape(dec), sumShape(s); got != want {
		t.Fatalf("decoded DAG differs:\n--- local ---\n%s--- decoded ---\n%s", want, got)
	}
	// Decoded steps must point into the program's own op array (summaries
	// reference IR, never copies), so interned conditions stay shared.
	if dec.Root.Steps == nil && dec.Root.Term == TermEnd {
		t.Fatal("decoded root is empty")
	}
}

// TestSummaryCodecErrors pins the malformed-stream error messages
// byte-for-byte, matching the program codec's conventions (label first,
// then what referenced what).
func TestSummaryCodecErrors(t *testing.T) {
	p := compileSum(sefl.Forward{Port: 0})
	cases := []struct {
		name string
		w    *WireSummary
		want string
	}{
		{"missing root", &WireSummary{Root: -1},
			"prog: decode summary e.in[0]: root references missing node -1"},
		{"root out of range", &WireSummary{Nodes: []WireSumNode{{Term: TermEnd}}, Root: 5},
			"prog: decode summary e.in[0]: root references missing node 5"},
		{"forward child reference", &WireSummary{Nodes: []WireSumNode{{Term: TermJump, Next: 0}}, Root: 0},
			"prog: decode summary e.in[0]: node 0 references out-of-order child 0"},
		{"missing op", &WireSummary{Nodes: []WireSumNode{{Steps: []int32{99}, Term: TermEnd}}, Root: 0},
			"prog: decode summary e.in[0]: node 0 references missing op 99"},
		{"missing branch op", &WireSummary{Nodes: []WireSumNode{{Term: TermEnd}, {Term: TermBranch, Br: 42, Then: 0, Else: 0}}, Root: 1},
			"prog: decode summary e.in[0]: node 1 references missing branch op 42"},
		{"unknown terminator", &WireSummary{Nodes: []WireSumNode{{Term: TermKind(7)}}, Root: 0},
			"prog: decode summary e.in[0]: node 0 has unknown terminator 7"},
	}
	for _, tc := range cases {
		_, err := DecodeSummary(p, tc.w)
		if err == nil || err.Error() != tc.want {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}
