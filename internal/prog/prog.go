// Package prog compiles SEFL port programs into a flat basic-block IR the
// engine interprets with a small dispatch loop, replacing per-step AST
// walking (the classic compile-once/execute-many structure of scalable
// symbolic-execution engines).
//
// A Program is an array of ops grouped into segments (basic blocks): If
// becomes an op carrying branch-target segments instead of nested
// instruction trees, Fork is an explicit multi-successor terminator listing
// output ports, and nested instruction blocks either splice into their
// parent segment or become explicit sub-segment ops when splicing would
// reorder fresh-symbol allocation (see compile.go). Compilation runs a
// static optimization pass:
//
//   - l-values are pre-resolved: metadata names bind to their MetaKey
//     (element instance baked in at compile time) and tag-independent header
//     offsets fold to absolute bit offsets;
//   - expressions and conditions that do not touch the packet are
//     constant-folded at compile time into the exact values runtime
//     evaluation would produce (including the exact error, when the static
//     evaluation would fail);
//   - ops after an op that terminates every path (Fail, Forward, Fork, an
//     If whose branches all terminate) are dead code and dropped;
//   - structurally equal guard conditions are deduplicated via 128-bit
//     structural fingerprints (expr.Fp), so a guard repeated across a
//     program compiles to one shared node;
//   - For-loop patterns are compiled to regexps once, and large symbol-free
//     guards carry a single-slot evaluation memo keyed by their distinct
//     packet reads (trace lines and failure messages stay lazy, rendered
//     only when the AST interpreter would render them).
//
// The compiled program must be observationally identical to the AST
// interpreter it replaces — same results, same statistics, same trace lines,
// same fresh-symbol allocation order — which is what the differential
// property tests in this package pin down. Programs are immutable after
// compilation and shared read-only across scheduler workers and batch jobs;
// the only mutable member is the per-For-op body-program cache, which is a
// concurrency-safe memo.
package prog

import (
	"regexp"
	"sync"
	"sync/atomic"

	"symnet/internal/expr"
	"symnet/internal/memory"
	"symnet/internal/sefl"
)

// OpKind enumerates the IR operations. One op corresponds to one SEFL
// instruction (blocks splice away or become OpSub boundaries).
type OpKind uint8

const (
	// OpNoOp does nothing (kept: it is traced like any instruction).
	OpNoOp OpKind = iota
	// OpAllocate creates a header field or metadata entry.
	OpAllocate
	// OpDeallocate destroys the topmost allocation of an l-value.
	OpDeallocate
	// OpAssign evaluates E and stores it into LV.
	OpAssign
	// OpCreateTag defines a tag at the concrete value of E.
	OpCreateTag
	// OpDestroyTag removes the topmost definition of a tag.
	OpDestroyTag
	// OpConstrain filters the current path by C without branching.
	OpConstrain
	// OpFail stops the path with a message. Terminator.
	OpFail
	// OpIf forks the state: the clone takes C into segment Then, the
	// original takes ¬C into segment Else; infeasible successors are pruned.
	OpIf
	// OpFor snapshots metadata keys matching a pattern and runs the
	// lazily-compiled body program once per key.
	OpFor
	// OpForward sends the packet to one output port. Terminator.
	OpForward
	// OpFork duplicates the packet to every listed output port: the explicit
	// multi-successor terminator of the IR.
	OpFork
	// OpSub runs a nested segment (an instruction block that could not be
	// spliced into its parent without reordering fresh-symbol allocation).
	OpSub
	// OpUnknown preserves the AST interpreter's behavior for instruction
	// types the compiler does not know: the path fails with Msg.
	OpUnknown
)

// LV is a pre-resolved l-value: metadata names are bound to their full
// MetaKey at compile time (the owning element instance is a compile input),
// and header offsets with no tag are already absolute. Only tagged offsets
// need runtime resolution (Tag != "").
type LV struct {
	IsHdr bool
	Tag   string // "" = Rel is the absolute bit offset
	Rel   int64
	Size  int // declared header size in bits (0 for metadata)
	Key   memory.MetaKey
	// Err preserves the AST interpreter's runtime error for l-value types
	// the compiler does not know; when set, any use fails with this message.
	Err string
}

// ExprKind enumerates compiled expression nodes, mirroring the SEFL
// expression fragment.
type ExprKind uint8

const (
	// ENum is an integer literal (width 0 adapts to the evaluation hint).
	ENum ExprKind = iota
	// ESym mints a fresh symbolic value at evaluation time.
	ESym
	// ERef reads a pre-resolved l-value.
	ERef
	// ETagVal reads the concrete value of a tag plus an offset.
	ETagVal
	// EArith is A+B or A-B under SEFL's linearity restriction.
	EArith
)

// CExpr is a compiled expression. Folded is non-nil when the node's value is
// independent of the evaluation hint and was computed at compile time; such
// nodes evaluate with a single load.
type CExpr struct {
	Kind   ExprKind
	Folded *expr.Lin
	V      uint64 // ENum value
	W      int    // ENum/ESym declared width (0 = adaptive)
	Name   string // ESym diagnostic name
	LV     LV     // ERef target
	Tag    string // ETagVal tag
	Rel    int64  // ETagVal offset
	A, B   *CExpr // EArith operands
	Minus  bool   // EArith: subtraction
	// Err preserves the AST interpreter's runtime error for expression
	// types the compiler does not know.
	Err string
}

// CondKind enumerates compiled condition nodes.
type CondKind uint8

const (
	// CBool is a constant condition.
	CBool CondKind = iota
	// CCmp compares two expressions.
	CCmp
	// CPrefix tests membership of a Value/Len prefix.
	CPrefix
	// CMasked tests (E & Mask) == Val.
	CMasked
	// CMetaPresent tests existence of a (pre-resolved) metadata entry.
	CMetaPresent
	// CAnd, COr, CNot combine conditions.
	CAnd
	COr
	CNot
	// CIntervalTable is a lowered egress-style guard: an Or whose disjuncts
	// are equality/prefix constraints over one header field (optionally
	// grouped by an equality on a second field) compiled into sorted,
	// merged value ranges. The node keeps the original disjuncts in Cs —
	// they are the reference semantics, selected by Env.OrTreeGuards and
	// used as the fallback when runtime value shapes fall outside the
	// table — and carries the packed table in IT. A lowered node keeps the
	// structural fingerprint of the Or it was built from.
	CIntervalTable
)

// CCond is a compiled condition. Conditions whose evaluation cannot touch
// the packet are evaluated once at compile time: HasStatic marks them, and
// Static/StaticErr replay the exact value (or the exact evaluation error)
// the AST interpreter would produce. Structurally equal conditions within a
// program share one canonical *CCond (hash-consed on FP), so repeated
// guards cost one node.
type CCond struct {
	Kind      CondKind
	FP        expr.Fp
	HasStatic bool
	Static    expr.Cond
	StaticErr string

	// Words is the structural node count, HasSym marks fresh-symbol
	// allocation anywhere below, and Memoizable gates the single-slot
	// evaluation memo: large guards without fresh symbols evaluate to a
	// pure function of their packet reads, so the built condition is cached
	// keyed by those reads (see EvalCond). The paper's egress-style models
	// re-assert guards spanning the whole forwarding table at every port
	// visit; the memo builds them once per distinct input instead.
	Words      int
	HasSym     bool
	Memoizable bool
	// Inputs is the deduplicated set of dynamic reads evaluation performs
	// (set only on Memoizable roots, in first-occurrence evaluation order).
	// A table-wide guard mentions one or two header fields thousands of
	// times; keying the memo on the distinct reads makes the lookup O(1)
	// in the guard size.
	Inputs []CondInput
	memo   atomic.Pointer[condMemo]

	B         bool       // CBool value
	Op        expr.CmpOp // CCmp operator
	L, R      *CExpr     // CCmp operands / CPrefix, CMasked subject (L)
	Val, Mask uint64     // CPrefix value / CMasked pair
	PLen, PW  int        // CPrefix length and width
	Key       memory.MetaKey
	Cs        []*CCond // CAnd/COr/CIntervalTable children
	C         *CCond   // CNot child
	IT        *ITable  // CIntervalTable payload
}

// ITable is the payload of a CIntervalTable node: the guarded field(s), the
// original disjuncts as flat rows (the exact information needed to rebuild
// the Or-tree children on the far side of the wire), and the precomputed
// span tables evaluation consumes. Tables are immutable after construction
// and shared by every path visiting the guard.
type ITable struct {
	F LV  // primary field l-value (a header field)
	W int // primary field width (== F.Size)
	// Grouped marks two-field tables (the VLAN-aware switch shape): rows
	// pair an equality on F with an equality on F2, and evaluation selects
	// the F-value's group then consults its span table over F2.
	Grouped bool
	F2      LV
	W2      int
	Rows    []ITRow
	// Table is the merged span table of a single-field guard (nil when
	// Grouped); Groups are the per-key tables of a grouped guard, sorted by
	// Key for binary search.
	Table  *expr.SpanTable
	Groups []ITGroup
}

// ITGroup is one F-value group of a grouped table.
type ITGroup struct {
	Key   uint64
	Table *expr.SpanTable
}

// ITRow is one disjunct of a lowered guard, in the shared packed-guard
// vocabulary of internal/expr (one wire grammar for the SEFL and IR
// codecs); ITEq/ITPrefix/ITPair name the row kinds.
type ITRow = expr.GuardRow

// ITExcl is one prefix exclusion of a row.
type ITExcl = expr.GuardExcl

// Row kinds (see expr.GuardRow).
const (
	ITEq     = expr.GuardEq
	ITPrefix = expr.GuardPrefix
	ITPair   = expr.GuardPair
)

// condMemo is one memoized evaluation of a Memoizable condition: the
// chained fingerprint of every dynamic input (packet reads, tag lookups,
// metadata presence) plus the condition — or exact error message — that
// evaluation produced. Entries are immutable; the slot swaps atomically.
type condMemo struct {
	key  expr.Fp
	cond expr.Cond
	err  string
}

// InputKind enumerates the dynamic-read kinds a condition evaluation can
// perform.
type InputKind uint8

const (
	// InRef reads an l-value.
	InRef InputKind = iota
	// InTag reads a tag's concrete value.
	InTag
	// InMetaPresent tests metadata existence.
	InMetaPresent
)

// CondInput is one distinct dynamic read of a memoizable condition.
type CondInput struct {
	Kind InputKind
	LV   LV     // InRef
	Tag  string // InTag
	Key  memory.MetaKey
}

// ForOp is the payload of an OpFor: the pattern compiled once, the body
// constructor, and a concurrency-safe memo of compiled body programs keyed
// by metadata key. Body must be a pure function of its key (every SEFL For
// in the tree is), since the compiled body is reused across executions.
type ForOp struct {
	Pattern string
	Re      *regexp.Regexp // nil when the pattern failed to compile
	Err     string         // precomputed bad-pattern failure message
	Body    func(key sefl.Meta) sefl.Instr
	cache   sync.Map // memory.MetaKey -> *Program
}

// SegID names a segment of a Program.
type SegID int32

// Seg is one basic block: the ops at indices [Lo, Hi) of Program.Ops.
type Seg struct {
	Lo, Hi int32
	// Terminates reports that every state entering the segment has
	// terminated (failed or set output ports) by its end — the property the
	// dead-code elimination pass computes and relies on.
	Terminates bool
}

// Op is one IR operation. The fields used depend on Kind. Ins is the
// original SEFL instruction: trace lines and constraint-failure messages
// render it on demand, exactly when (and only when) the AST interpreter
// would — precomputing them would pin huge strings for models whose guards
// span hundreds of thousands of table entries. Ins is nil for OpSub, which
// is not traced (the AST interpreter does not trace blocks either).
type Op struct {
	Kind  OpKind
	Ins   sefl.Instr
	LV    LV     // OpAllocate, OpDeallocate, OpAssign
	Size  int    // OpAllocate, OpDeallocate (pre-defaulted from the Hdr size)
	E     *CExpr // OpAssign, OpCreateTag
	C     *CCond // OpConstrain, OpIf
	Msg   string // OpFail / OpCreateTag failure / OpUnknown message
	Tag   string // OpCreateTag, OpDestroyTag
	Port  int    // OpForward
	Ports []int  // OpFork
	Then  SegID  // OpIf
	Else  SegID  // OpIf
	Sub   SegID  // OpSub
	For   *ForOp // OpFor
}

// Program is one compiled element-port program: a flat op array cut into
// segments, entered at Entry. Programs are immutable and safe for
// concurrent execution.
type Program struct {
	Elem     string // element name (baked into trace lines)
	Instance int    // element instance (baked into metadata keys)
	Label    string // display label, e.g. "sw.in[3]"
	Ops      []Op
	Segs     []Seg
	Entry    SegID
	// Conds is the number of distinct condition nodes after dedup, and
	// CondsSeen the number before (for -dump-ir and tests).
	Conds, CondsSeen int
}

// Seg returns the segment with the given id.
func (p *Program) Seg(id SegID) Seg { return p.Segs[id] }

// ForBody returns the compiled body program of a For op for one metadata
// key, compiling and memoizing on first use. The body program shares the
// element identity of its parent, so local metadata and trace lines resolve
// identically to the AST interpreter instantiating the body in-line.
func (p *Program) ForBody(f *ForOp, key memory.MetaKey) *Program {
	if bp, ok := f.cache.Load(key); ok {
		return bp.(*Program)
	}
	body := f.Body(sefl.Meta{Name: key.Name, Instance: key.Instance, Pinned: true})
	bp := Compile(body, p.Elem, p.Instance, p.Label+"/for")
	actual, _ := f.cache.LoadOrStore(key, bp)
	return actual.(*Program)
}
