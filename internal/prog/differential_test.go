package prog_test

// Differential property tests: randomly generated SEFL programs executed by
// the compiled-IR engine must produce Results byte-identical to the AST
// reference interpreter, sequentially and at 1/2/8 workers. The generator
// deliberately produces the constructs whose compilation is delicate —
// Symbolic allocations after forks (global allocation order), nested blocks
// behind Ifs (splice analysis), dead code behind terminators, error paths
// (unset tags, unallocated reads, unsatisfiable constraints), For loops,
// and tracing.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"symnet/internal/core"
	"symnet/internal/datasets"
	"symnet/internal/sched"
	"symnet/internal/sefl"
)

// fingerprint serializes everything observable about a Result: path IDs,
// statuses, messages, histories, traces, final memory (fields, metadata,
// tags), the constraint context's chained fingerprint, and run statistics.
func fingerprint(res *core.Result) string { return fingerprintCtx(res, true) }

// obsFingerprint is fingerprint minus the constraint-fingerprint chain: the
// comparison surface between interval-table and Or-tree guard evaluation.
// The two modes hand the solver different (equivalent) condition
// representations for lowered guards, so the chained Add fingerprints
// legitimately differ; every observable — results, statuses, messages,
// histories, traces, memory contents, symbol IDs, pending-disjunction
// counts, solver statistics — must still be byte-identical.
func obsFingerprint(res *core.Result) string { return fingerprintCtx(res, false) }

func fingerprintCtx(res *core.Result, withCtx bool) string {
	var b strings.Builder
	for _, p := range res.Paths {
		fmt.Fprintf(&b, "#%d %s %q", p.ID, p.Status, p.FailMsg)
		for _, h := range p.History() {
			fmt.Fprintf(&b, " %s", h)
		}
		for _, line := range p.Trace {
			fmt.Fprintf(&b, " T:%s", line)
		}
		for _, f := range p.Mem.Fields() {
			fmt.Fprintf(&b, " @%d/%d=%v:%v", f.Off, f.Size, f.Val, f.Set)
		}
		for _, me := range p.Mem.MetaEntries() {
			fmt.Fprintf(&b, " m[%s]=%v:%v", me.Key, me.Val, me.Set)
		}
		tags := p.Mem.Tags()
		names := make([]string, 0, len(tags))
		for tag := range tags {
			names = append(names, tag)
		}
		sort.Strings(names)
		for _, tag := range names {
			fmt.Fprintf(&b, " t[%s]=%d", tag, tags[tag])
		}
		if withCtx {
			fp := p.Ctx.Fingerprint()
			fmt.Fprintf(&b, " ctx=%x.%x", fp.Hi, fp.Lo)
		}
		fmt.Fprintf(&b, " pend=%d\n", p.Ctx.PendingOrs())
	}
	fmt.Fprintf(&b, "stats %+v\n", res.Stats)
	return b.String()
}

// gen is a deterministic random SEFL generator.
type gen struct {
	rng  *rand.Rand
	meta []sefl.Meta
	hdrs []sefl.Hdr
}

func newGen(seed int64) *gen {
	g := &gen{rng: rand.New(rand.NewSource(seed))}
	// Header-field palette: allocated by the injection code. Distinct
	// offsets; widths matter for fold/coerce paths.
	g.hdrs = []sefl.Hdr{
		{Off: sefl.At(0), Size: 32, Name: "F0"},
		{Off: sefl.At(32), Size: 16, Name: "F1"},
		{Off: sefl.At(48), Size: 16, Name: "F2"},
		{Off: sefl.FromTag("T", 0), Size: 8, Name: "F3"}, // tag-relative
	}
	g.meta = []sefl.Meta{
		{Name: "m0"}, {Name: "m1"}, {Name: "m2", Local: true},
	}
	return g
}

func (g *gen) intn(n int) int { return g.rng.Intn(n) }

// inject builds the symbolic packet: fields allocated and assigned, the
// "T" tag set, two metadata entries. F3 sits at tag T (=64) + 0 = bit 64.
func (g *gen) inject() sefl.Instr {
	is := []sefl.Instr{
		sefl.CreateTag{Name: "T", E: sefl.C(64)},
	}
	for _, h := range g.hdrs {
		is = append(is,
			sefl.Allocate{LV: h, Size: h.Size},
			sefl.Assign{LV: h, E: sefl.Symbolic{W: h.Size, Name: h.Name}},
		)
	}
	is = append(is,
		sefl.Allocate{LV: g.meta[0], Size: 32},
		sefl.Assign{LV: g.meta[0], E: sefl.C(7)},
		sefl.Allocate{LV: g.meta[1], Size: 16},
		sefl.Assign{LV: g.meta[1], E: sefl.Symbolic{W: 16, Name: "m1"}},
	)
	return sefl.Seq(is...)
}

func (g *gen) lv() sefl.LValue {
	if g.intn(3) == 0 {
		return g.meta[g.intn(len(g.meta))]
	}
	return g.hdrs[g.intn(len(g.hdrs))]
}

func (g *gen) expr(depth int) sefl.Expr {
	switch r := g.intn(10); {
	case r < 3:
		widths := []int{0, 8, 16, 32}
		return sefl.CW(uint64(g.intn(200)), widths[g.intn(len(widths))])
	case r < 6:
		return sefl.Ref{LV: g.lv()}
	case r == 6:
		return sefl.Symbolic{W: 16, Name: fmt.Sprintf("s%d", g.intn(4))}
	case r == 7:
		return sefl.TagVal{Tag: "T", Rel: int64(g.intn(8))}
	default:
		if depth <= 0 {
			return sefl.C(uint64(g.intn(50)))
		}
		a, b := g.expr(depth-1), g.expr(depth-1)
		if g.intn(2) == 0 {
			return sefl.Add{A: a, B: b}
		}
		return sefl.Sub{A: a, B: b}
	}
}

func (g *gen) cond(depth int) sefl.Cond {
	if depth <= 0 || g.intn(4) == 0 {
		switch g.intn(5) {
		case 0:
			ops := []func(l, r sefl.Expr) sefl.Cond{sefl.Eq, sefl.Ne, sefl.Lt, sefl.Le, sefl.Gt, sefl.Ge}
			return ops[g.intn(len(ops))](g.expr(1), g.expr(1))
		case 1:
			return sefl.Prefix{E: sefl.Ref{LV: g.hdrs[0]}, Value: uint64(g.intn(256)) << 24, Len: 8 + g.intn(8)}
		case 2:
			return sefl.Masked{E: sefl.Ref{LV: g.hdrs[g.intn(2)]}, Mask: uint64(0xff) << uint(g.intn(3)*4), Val: uint64(g.intn(256))}
		case 3:
			return sefl.MetaPresent{M: g.meta[g.intn(len(g.meta))]}
		default:
			return sefl.CBool(g.intn(4) != 0)
		}
	}
	switch g.intn(3) {
	case 0:
		return sefl.AndC(g.cond(depth-1), g.cond(depth-1))
	case 1:
		return sefl.OrC(g.cond(depth-1), g.cond(depth-1))
	default:
		return sefl.NotC(g.cond(depth - 1))
	}
}

func (g *gen) instr(depth int, numOut int) sefl.Instr {
	switch r := g.intn(14); {
	case r < 4:
		return sefl.Assign{LV: g.lv(), E: g.expr(2)}
	case r < 6:
		return sefl.Constrain{C: g.cond(2)}
	case r == 6 && depth > 0:
		return sefl.If{C: g.cond(2), Then: g.instr(depth-1, numOut), Else: g.instr(depth-1, numOut)}
	case r == 7 && depth > 0:
		n := 2 + g.intn(2)
		is := make([]sefl.Instr, n)
		for i := range is {
			is[i] = g.instr(depth-1, numOut)
		}
		return sefl.Block{Is: is}
	case r == 8:
		m := sefl.Meta{Name: fmt.Sprintf("x%d", g.intn(3))}
		return sefl.Seq(
			sefl.Allocate{LV: m, Size: 16},
			sefl.Assign{LV: m, E: g.expr(1)},
		)
	case r == 9:
		// For over the metadata palette: body is a pure function of its key.
		return sefl.For{Pattern: "^m", Body: func(k sefl.Meta) sefl.Instr {
			return sefl.Assign{LV: k, E: sefl.Add{A: sefl.Ref{LV: k}, B: sefl.C(1)}}
		}}
	case r == 10:
		return sefl.CreateTag{Name: "U", E: g.expr(1)}
	case r == 11:
		return sefl.Fail{Msg: fmt.Sprintf("generated fail %d", g.intn(10))}
	case r == 12:
		// Error-path fodder: read through a possibly-unset tag.
		return sefl.Assign{LV: sefl.Hdr{Off: sefl.FromTag("U", 0), Size: 8}, E: sefl.C(1)}
	default:
		return sefl.NoOp{}
	}
}

// portCode generates input-port code ending in Forward or Fork.
func (g *gen) portCode(numOut int) sefl.Instr {
	n := 1 + g.intn(4)
	is := make([]sefl.Instr, 0, n+1)
	for i := 0; i < n; i++ {
		is = append(is, g.instr(2, numOut))
	}
	switch g.intn(4) {
	case 0:
		ports := make([]int, 0, numOut)
		for p := 0; p < numOut; p++ {
			if g.intn(2) == 0 || len(ports) == 0 {
				ports = append(ports, p)
			}
		}
		is = append(is, sefl.Fork{Ports: ports})
	default:
		is = append(is, sefl.Forward{Port: g.intn(numOut)})
	}
	return sefl.Seq(is...)
}

// network builds a random chain of elements with occasional out-port code
// and cross links, ending in a sink.
func (g *gen) network() (*core.Network, core.PortRef) {
	net := core.NewNetwork()
	n := 2 + g.intn(3)
	fan := 2
	for i := 0; i < n; i++ {
		e := net.AddElement(fmt.Sprintf("e%d", i), "gen", fan, fan)
		e.SetInCode(core.WildcardPort, g.portCode(fan))
		if g.intn(3) == 0 {
			// Out-port code must not forward; generate straight-line code.
			e.SetOutCode(g.intn(fan), sefl.Seq(
				g.instr(1, fan),
				g.instr(1, fan),
			))
		}
	}
	sink := net.AddElement("sink", "sink", 1, 0)
	sink.SetInCode(0, sefl.NoOp{})
	for i := 0; i < n; i++ {
		for p := 0; p < fan; p++ {
			if i+1 < n {
				net.MustLink(fmt.Sprintf("e%d", i), p, fmt.Sprintf("e%d", i+1), g.intn(fan))
			} else {
				net.MustLink(fmt.Sprintf("e%d", i), p, "sink", 0)
			}
		}
	}
	return net, core.PortRef{Elem: "e0", Port: 0}
}

// TestDifferentialCompiledVsAST is the core differential property: for many
// random programs, the compiled engine's Result must be byte-identical to
// the AST interpreter's, with tracing exercised on a subset of seeds. The
// Or-tree reference mode must match the AST including constraint
// fingerprints; the default interval-table mode must match on every
// observable (the ctx chain may differ on lowered guards).
func TestDifferentialCompiledVsAST(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 15
	}
	for seed := 0; seed < seeds; seed++ {
		g := newGen(int64(seed))
		net, inj := g.network()
		init := g.inject()
		opts := core.Options{MaxHops: 48, MaxPaths: 1 << 14, Trace: seed%4 == 0}

		astOpts := opts
		astOpts.ASTInterp = true
		ast, err := core.Run(net, inj, init, astOpts)
		if err != nil {
			t.Fatalf("seed %d: AST run: %v", seed, err)
		}
		want := fingerprint(ast)

		refOpts := opts
		refOpts.OrTreeGuards = true
		ref, err := core.Run(net, inj, init, refOpts)
		if err != nil {
			t.Fatalf("seed %d: compiled (Or-tree) run: %v", seed, err)
		}
		if got := fingerprint(ref); got != want {
			t.Fatalf("seed %d: Or-tree compiled result differs from AST:\n--- AST ---\n%s--- compiled ---\n%s",
				seed, diffHead(want, got), diffHead(got, want))
		}

		ir, err := core.Run(net, inj, init, opts)
		if err != nil {
			t.Fatalf("seed %d: compiled run: %v", seed, err)
		}
		if got, wantObs := obsFingerprint(ir), obsFingerprint(ast); got != wantObs {
			t.Fatalf("seed %d: interval-table compiled result differs from AST:\n--- AST ---\n%s--- compiled ---\n%s",
				seed, diffHead(wantObs, got), diffHead(got, wantObs))
		}
		if ast.Stats.Paths == 0 {
			t.Fatalf("seed %d: no paths explored", seed)
		}
	}
}

// TestDifferentialWorkers runs the same random programs across worker
// counts: compiled results must stay byte-identical to the sequential AST
// reference at 1, 2 and 8 workers.
func TestDifferentialWorkers(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := 0; seed < seeds; seed++ {
		g := newGen(int64(1000 + seed))
		net, inj := g.network()
		init := g.inject()
		opts := core.Options{MaxHops: 48, MaxPaths: 1 << 14}

		astOpts := opts
		astOpts.ASTInterp = true
		ast, err := core.Run(net, inj, init, astOpts)
		if err != nil {
			t.Fatalf("seed %d: AST run: %v", seed, err)
		}
		wantObs := obsFingerprint(ast)
		var wantFull string
		for _, workers := range []int{1, 2, 8} {
			res, err := sched.Run(net, inj, init, opts, workers)
			if err != nil {
				t.Fatalf("seed %d: %d-worker run: %v", seed, workers, err)
			}
			if got := obsFingerprint(res); got != wantObs {
				t.Errorf("seed %d: %d-worker compiled result differs from sequential AST", seed, workers)
			}
			// Within one guard mode the full fingerprint (ctx chain included)
			// must also be worker-count independent.
			if workers == 1 {
				wantFull = fingerprint(res)
			} else if got := fingerprint(res); got != wantFull {
				t.Errorf("seed %d: %d-worker full fingerprint differs from 1-worker", seed, workers)
			}
		}
	}
}

// TestDifferentialDatasets pins byte-identity of the two engines on the
// real evaluation workloads (the paper's networks), not just generated
// programs: department office/inbound, Stanford-like backbone, Split-TCP
// scenarios, and the fork-heavy microbench topology.
func TestDifferentialDatasets(t *testing.T) {
	type workload struct {
		name   string
		net    *core.Network
		inject core.PortRef
		packet sefl.Instr
		opts   core.Options
	}
	var ws []workload
	d := datasets.NewDepartment(datasets.DepartmentConfig{
		NumAccessSwitches: 3, HostsPerSwitch: 24, Routes: 40, Seed: 5})
	ws = append(ws,
		workload{"department office", d.Net, core.PortRef{Elem: "asw0", Port: 1}, d.OfficePacket(false), core.Options{MaxHops: 64}},
		workload{"department inbound", d.Net, core.PortRef{Elem: "exit", Port: 1}, sefl.NewTCPPacket(), core.Options{MaxHops: 64}},
	)
	bb := datasets.StanfordBackbone(6, 50)
	ws = append(ws, workload{"backbone", bb.Net, core.PortRef{Elem: bb.Zones[0], Port: 2}, sefl.NewIPPacket(), core.Options{}})
	stcp := datasets.NewSplitTCP(datasets.SplitTCPConfig{MTUDrop: true, Tunnel: true, ProxyRewritesMAC: true})
	ws = append(ws, workload{"splittcp", stcp, core.PortRef{Elem: "client", Port: 0}, datasets.SplitTCPClientPacket(), core.Options{MaxHops: 64}})
	fh, fhInject := datasets.ForkHeavy(8, 3, 4)
	ws = append(ws, workload{"forkheavy", fh, fhInject, sefl.NewTCPPacket(), core.Options{MaxHops: 1 << 12}})

	for _, w := range ws {
		astOpts := w.opts
		astOpts.ASTInterp = true
		ast, err := core.Run(w.net, w.inject, w.packet, astOpts)
		if err != nil {
			t.Fatalf("%s: AST run: %v", w.name, err)
		}
		refOpts := w.opts
		refOpts.OrTreeGuards = true
		ref, err := core.Run(w.net, w.inject, w.packet, refOpts)
		if err != nil {
			t.Fatalf("%s: compiled (Or-tree) run: %v", w.name, err)
		}
		ir, err := core.Run(w.net, w.inject, w.packet, w.opts)
		if err != nil {
			t.Fatalf("%s: compiled run: %v", w.name, err)
		}
		if ast.Stats.Paths == 0 {
			t.Fatalf("%s: no paths explored", w.name)
		}
		if want, got := fingerprint(ast), fingerprint(ref); want != got {
			t.Errorf("%s: Or-tree compiled result differs from AST:\n%s", w.name, diffHead(want, got))
		}
		if want, got := obsFingerprint(ast), obsFingerprint(ir); want != got {
			t.Errorf("%s: interval-table compiled result differs from AST:\n%s", w.name, diffHead(want, got))
		}
	}
}

// TestDifferentialGuardModesWorkers is the interval-table acceptance
// property over the real datasets: at 1, 2 and 8 workers, interval-table
// execution must match the Or-tree reference on every observable (results,
// stats, traces, symbol IDs), and each mode must be worker-count
// deterministic including its constraint-fingerprint chain.
func TestDifferentialGuardModesWorkers(t *testing.T) {
	type workload struct {
		name   string
		net    *core.Network
		inject core.PortRef
		packet sefl.Instr
		opts   core.Options
	}
	d := datasets.NewDepartment(datasets.DepartmentConfig{
		NumAccessSwitches: 3, HostsPerSwitch: 24, Routes: 40, Seed: 5})
	bb := datasets.StanfordBackbone(6, 50)
	fh, fhInject := datasets.ForkHeavy(8, 3, 4)
	ws := []workload{
		{"department", d.Net, core.PortRef{Elem: "asw0", Port: 1}, d.OfficePacket(false), core.Options{MaxHops: 64}},
		{"backbone", bb.Net, core.PortRef{Elem: bb.Zones[0], Port: 2}, sefl.NewIPPacket(), core.Options{}},
		{"forkheavy", fh, fhInject, sefl.NewTCPPacket(), core.Options{MaxHops: 1 << 12}},
	}
	for _, w := range ws {
		var wantObs string
		for _, orTree := range []bool{true, false} {
			opts := w.opts
			opts.OrTreeGuards = orTree
			var wantFull string
			for _, workers := range []int{1, 2, 8} {
				res, err := sched.Run(w.net, w.inject, w.packet, opts, workers)
				if err != nil {
					t.Fatalf("%s ortree=%v workers=%d: %v", w.name, orTree, workers, err)
				}
				if workers == 1 {
					wantFull = fingerprint(res)
					if orTree {
						wantObs = obsFingerprint(res)
					} else if got := obsFingerprint(res); got != wantObs {
						t.Errorf("%s: interval-table observables differ from Or-tree reference:\n%s",
							w.name, diffHead(wantObs, got))
					}
				} else if got := fingerprint(res); got != wantFull {
					t.Errorf("%s ortree=%v: %d-worker full fingerprint differs from 1-worker", w.name, orTree, workers)
				}
			}
		}
	}
}

// diffHead returns the first line where a differs from b, for readable
// failures.
func diffHead(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := range al {
		if i >= len(bl) || al[i] != bl[i] {
			lo := i - 1
			if lo < 0 {
				lo = 0
			}
			hi := i + 2
			if hi > len(al) {
				hi = len(al)
			}
			return fmt.Sprintf("(first divergence at line %d)\n%s\n", i, strings.Join(al[lo:hi], "\n"))
		}
	}
	return a
}
