package prog

import (
	"sync/atomic"

	"symnet/internal/obs"
)

// Compile-side telemetry lives in package-global atomics rather than a
// per-run registry: compiled programs are cached process-wide (an element's
// program outlives any one run), so per-run attribution is ill-defined, and
// compiles are rare enough that unconditional counting costs nothing
// measurable. RegisterMetrics surfaces the totals as snapshot-time counter
// funcs, so a registry always reports the live process-wide values.
var (
	compileCount    atomic.Int64 // SEFL programs lowered to flat IR
	compileNs       atomic.Int64 // total wall time spent in Compile
	itableLowered   atomic.Int64 // Or-guards lowered to interval tables
	itableFallbacks atomic.Int64 // lowered guards that fell back to the Or-tree at eval time
)

// RegisterMetrics exposes the compiler's process-wide telemetry on reg:
//
//	prog.compile.count     programs compiled
//	prog.compile.ns        total compile wall time (nanoseconds)
//	prog.itable.lowered    egress guards lowered to interval tables
//	prog.itable.fallbacks  table evaluations that fell back to the Or-tree
//
// No-op on a nil registry.
func RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("prog.compile.count", compileCount.Load)
	reg.CounterFunc("prog.compile.ns", compileNs.Load)
	reg.CounterFunc("prog.itable.lowered", itableLowered.Load)
	reg.CounterFunc("prog.itable.fallbacks", itableFallbacks.Load)
}
