package prog

// Interval-table lowering of egress-style guards.
//
// The egress switch/router models of the paper re-assert, at every output
// port, a disjunction spanning the whole forwarding table: "EtherDst == MAC1
// | MAC2 | ...", "IPDst in P1 | (P2 & !more-specific) | ...", or the
// VLAN-aware "Or((vlan==V, mac==M)...)". The solver already compresses such
// an Or into one interval-set union per assertion, but it does that work —
// atom walk, set construction, k-way merge, structural hashing — on every
// path visit, and the serialized Or-tree dominates the distributed setup
// frame. Lowering detects the shape once at compile time and attaches the
// merged span table to the condition node, so each visit costs one field
// read plus one packed-set assertion (expr.InSet), and the wire carries
// packed ranges instead of a tree.
//
// Detection is deliberately conservative: every disjunct must be an
// equality/prefix constraint on one shared header field, optionally with
// prefix exclusions (the LPM compilation shape), or an equality pair over
// two shared header fields, with constant widths equal to the field's
// declared size. Anything else keeps the Or-tree, whose semantics are
// unchanged. The lowered node retains the original disjuncts as children:
// Env.OrTreeGuards selects them as executable reference semantics, and
// evaluation falls back to them whenever the runtime value shapes are not
// the ones the table was compiled for, so lowering can never change
// observable behavior.

import (
	"sort"

	"symnet/internal/expr"
	"symnet/internal/solver"
)

// itMinEntries gates lowering: a 2-entry Or gains nothing measurable, but
// lowering it costs compile time and a table per node. The real targets are
// table-wide guards with hundreds to hundreds of thousands of entries.
const itMinEntries = 4

// PackedWire toggles the packed (row-stream) wire encoding of lowered
// guards; disabled, their disjuncts ship as ordinary condition-table nodes.
// It exists for measurement and debugging (cmd/symbench's interval-table
// experiment reports the wire-size delta by encoding both ways); leave it
// enabled in production. Decoding accepts both forms regardless.
var PackedWire = true

// lowerIntervalTable inspects a freshly compiled COr node and, when its
// disjuncts form an interval-table shape, lowers it in place to
// CIntervalTable. The node's fingerprint is already computed (and stays the
// Or fingerprint — lowering is a representation change, not a semantic one).
func lowerIntervalTable(cc *CCond) {
	if cc.Kind != COr || len(cc.Cs) < itMinEntries {
		return
	}
	it := detectIntervalTable(cc.Cs)
	if it == nil {
		return
	}
	buildITable(it)
	cc.Kind = CIntervalTable
	cc.IT = it
	itableLowered.Add(1)
}

// itField accepts a compiled expression as a table field: a direct read of a
// header l-value with a usable declared width.
func itField(e *CExpr) (LV, bool) {
	if e == nil || e.Kind != ERef || e.Err != "" {
		return LV{}, false
	}
	lv := e.LV
	if !lv.IsHdr || lv.Err != "" || lv.Size < 1 || lv.Size > 64 {
		return LV{}, false
	}
	return lv, true
}

// itConst accepts a compiled expression as a table constant of width w: a
// fixed-width literal whose declared width equals the field width, so
// runtime width coercion can never fire on it.
func itConst(e *CExpr, w int) (uint64, bool) {
	if e == nil || e.Kind != ENum || e.Err != "" || e.W != w {
		return 0, false
	}
	return e.V, true
}

// itEqAtom matches Eq(field, const-of-field-width).
func itEqAtom(c *CCond) (LV, uint64, bool) {
	if c.Kind != CCmp || c.Op != expr.Eq {
		return LV{}, 0, false
	}
	f, ok := itField(c.L)
	if !ok {
		return LV{}, 0, false
	}
	v, ok := itConst(c.R, f.Size)
	if !ok {
		return LV{}, 0, false
	}
	return f, v, true
}

// itPrefixAtom matches Prefix(field, V/Len) evaluated at the field's width.
func itPrefixAtom(c *CCond) (LV, uint64, int, bool) {
	if c.Kind != CPrefix {
		return LV{}, 0, 0, false
	}
	f, ok := itField(c.L)
	if !ok || c.PW != f.Size {
		return LV{}, 0, 0, false
	}
	return f, c.Val, c.PLen, true
}

// itParseRow classifies one disjunct, returning its row plus the field
// (and, for pair rows, second field) it constrains.
func itParseRow(c *CCond) (ITRow, LV, LV, bool) {
	none := ITRow{}
	if f, v, ok := itEqAtom(c); ok {
		return ITRow{Kind: ITEq, V: v}, f, LV{}, true
	}
	if f, v, plen, ok := itPrefixAtom(c); ok {
		return ITRow{Kind: ITPrefix, V: v, Len: plen}, f, LV{}, true
	}
	if c.Kind != CAnd || len(c.Cs) < 2 {
		return none, LV{}, LV{}, false
	}
	// Exclusion shape: head atom followed by only prefix negations on the
	// same field.
	head := c.Cs[0]
	var row ITRow
	var f LV
	var headOK bool
	if hf, v, ok := itEqAtom(head); ok {
		row, f, headOK = ITRow{Kind: ITEq, V: v}, hf, true
	} else if hf, v, plen, ok := itPrefixAtom(head); ok {
		row, f, headOK = ITRow{Kind: ITPrefix, V: v, Len: plen}, hf, true
	}
	if headOK {
		excl := make([]ITExcl, 0, len(c.Cs)-1)
		for _, sub := range c.Cs[1:] {
			if sub.Kind != CNot {
				excl = nil
				break
			}
			ef, v, plen, ok := itPrefixAtom(sub.C)
			if !ok || ef != f {
				excl = nil
				break
			}
			excl = append(excl, ITExcl{V: v, Len: plen})
		}
		if excl != nil {
			row.Excl = excl
			return row, f, LV{}, true
		}
	}
	// Pair shape: exactly two equalities on two distinct fields.
	if len(c.Cs) == 2 {
		f1, v1, ok1 := itEqAtom(c.Cs[0])
		f2, v2, ok2 := itEqAtom(c.Cs[1])
		if ok1 && ok2 && f1 != f2 {
			return ITRow{Kind: ITPair, V: v1, V2: v2}, f1, f2, true
		}
	}
	return none, LV{}, LV{}, false
}

// detectIntervalTable parses every disjunct and checks shape uniformity:
// all rows over one shared field, or all pair rows over one shared ordered
// field pair. It returns nil when the Or is not a table.
func detectIntervalTable(cs []*CCond) *ITable {
	it := &ITable{Rows: make([]ITRow, 0, len(cs))}
	for i, c := range cs {
		row, f, f2, ok := itParseRow(c)
		if !ok {
			return nil
		}
		grouped := row.Kind == ITPair
		if i == 0 {
			it.F, it.W = f, f.Size
			it.Grouped = grouped
			if grouped {
				it.F2, it.W2 = f2, f2.Size
			}
		} else if grouped != it.Grouped || f != it.F || (grouped && f2 != it.F2) {
			return nil
		}
		it.Rows = append(it.Rows, row)
	}
	return it
}

// itRowSet returns one row's solution set over the field's value space,
// computed with the same interval-set operations the solver's disjunction
// compression applies at assertion time, so the merged table is exactly the
// set a reference-mode assertion would have produced.
func itRowSet(r ITRow, w int) *solver.IntervalSet {
	var s *solver.IntervalSet
	switch r.Kind {
	case ITEq, ITPair:
		s = solver.Singleton(r.V, w)
	case ITPrefix:
		s = solver.FromMask(expr.PrefixMask(r.Len, w), r.V, w)
	}
	for _, e := range r.Excl {
		s = s.Subtract(solver.FromMask(expr.PrefixMask(e.Len, w), e.V, w))
	}
	return s
}

// buildITable computes the packed span tables from the rows: the merged
// single-field table, or the per-group tables of a grouped guard (groups
// sorted by key). It is shared by the compiler and the wire decoder, so a
// decoded table is identical to the coordinator's.
func buildITable(it *ITable) {
	if !it.Grouped {
		sets := make([]*solver.IntervalSet, len(it.Rows))
		for i, r := range it.Rows {
			sets[i] = itRowSet(r, it.W)
		}
		u := solver.UnionAll(it.W, sets)
		it.Table = expr.NewSpanTable(it.W, u.Intervals())
		return
	}
	m := expr.Mask(it.W)
	byKey := make(map[uint64][]expr.Span)
	var order []uint64
	for _, r := range it.Rows {
		k := r.V & m
		if _, seen := byKey[k]; !seen {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], expr.Span{Lo: r.V2 & expr.Mask(it.W2), Hi: r.V2 & expr.Mask(it.W2)})
	}
	groups := make([]ITGroup, 0, len(order))
	for _, k := range order {
		groups = append(groups, ITGroup{Key: k, Table: expr.NewSpanTable(it.W2, byKey[k])})
	}
	// Sorted by key for binary search (model order need not be sorted).
	sort.Slice(groups, func(i, j int) bool { return groups[i].Key < groups[j].Key })
	it.Groups = groups
}

// group returns the span table for one primary-field value, or nil.
func (it *ITable) group(key uint64) *ITGroup {
	lo, hi := 0, len(it.Groups)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		switch g := &it.Groups[mid]; {
		case key < g.Key:
			hi = mid - 1
		case key > g.Key:
			lo = mid + 1
		default:
			return g
		}
	}
	return nil
}

// --- Child reconstruction (wire decode) ---

// Rows cross the wire as the flat word stream of expr.PackGuardRows instead
// of per-disjunct tree nodes; this is what shrinks the distributed setup
// frame for table-heavy networks.

// itBuilder rebuilds the original Or-tree disjuncts of a lowered guard from
// its rows, hash-consing within the builder exactly as the compiler did, so
// the decoded children are byte-identical (fingerprints, flags, sharing) to
// the coordinator's.
type itBuilder struct {
	conds map[expr.Fp][]*CCond
}

func (b *itBuilder) seal(cc *CCond) *CCond {
	cc.FP = fpCond(cc)
	if cand := findCond(b.conds, cc); cand != nil {
		return cand
	}
	finishCond(cc)
	b.conds[cc.FP] = append(b.conds[cc.FP], cc)
	return cc
}

// itRef mirrors compileExpr for a header-field reference.
func itRef(lv LV) *CExpr { return &CExpr{Kind: ERef, LV: lv} }

// itNum mirrors compileExpr for a fixed-width literal.
func itNum(v uint64, w int) *CExpr {
	ce := &CExpr{Kind: ENum, V: v, W: w}
	l := expr.Const(v, w)
	ce.Folded = &l
	return ce
}

func (b *itBuilder) eq(f LV, v uint64) *CCond {
	return b.seal(&CCond{Kind: CCmp, Op: expr.Eq, L: itRef(f), R: itNum(v, f.Size)})
}

func (b *itBuilder) prefix(f LV, v uint64, plen int) *CCond {
	return b.seal(&CCond{Kind: CPrefix, L: itRef(f), Val: v, PLen: plen, PW: f.Size})
}

// children rebuilds the disjunct list of a lowered guard.
func (b *itBuilder) children(it *ITable) []*CCond {
	cs := make([]*CCond, 0, len(it.Rows))
	for _, r := range it.Rows {
		var head *CCond
		switch r.Kind {
		case ITPair:
			cs = append(cs, b.seal(&CCond{Kind: CAnd, Cs: []*CCond{b.eq(it.F, r.V), b.eq(it.F2, r.V2)}}))
			continue
		case ITEq:
			head = b.eq(it.F, r.V)
		case ITPrefix:
			head = b.prefix(it.F, r.V, r.Len)
		}
		if len(r.Excl) == 0 {
			cs = append(cs, head)
			continue
		}
		sub := make([]*CCond, 0, len(r.Excl)+1)
		sub = append(sub, head)
		for _, e := range r.Excl {
			sub = append(sub, b.seal(&CCond{Kind: CNot, C: b.prefix(it.F, e.V, e.Len)}))
		}
		cs = append(cs, b.seal(&CCond{Kind: CAnd, Cs: sub}))
	}
	return cs
}
