package prog

import (
	"fmt"
	"strings"
)

// String renders the program's IR for inspection (cmd/symnet -dump-ir):
// one line per op, segments in emission order, branch targets as segment
// ids. Conditions render their original SEFL form, with fold/dedup
// annotations.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s (elem %s, instance %d): %d ops, %d segs, %d/%d conds after dedup, entry seg%d\n",
		p.Label, p.Elem, p.Instance, len(p.Ops), len(p.Segs), p.Conds, p.CondsSeen, p.Entry)
	for id, seg := range p.Segs {
		term := ""
		if seg.Terminates {
			term = " terminates"
		}
		fmt.Fprintf(&b, "seg%d:%s\n", id, term)
		if seg.Lo == seg.Hi {
			fmt.Fprintf(&b, "  (empty)\n")
		}
		for i := seg.Lo; i < seg.Hi; i++ {
			fmt.Fprintf(&b, "  %3d: %s\n", i, p.opString(&p.Ops[i]))
		}
	}
	return b.String()
}

func (p *Program) opString(op *Op) string {
	switch op.Kind {
	case OpNoOp:
		return "nop"
	case OpAllocate:
		return fmt.Sprintf("alloc   %s size=%d", lvString(op.LV), op.Size)
	case OpDeallocate:
		return fmt.Sprintf("dealloc %s size=%d", lvString(op.LV), op.Size)
	case OpAssign:
		return fmt.Sprintf("assign  %s <- %s", lvString(op.LV), exprString(op.E))
	case OpCreateTag:
		return fmt.Sprintf("tag     %q <- %s", op.Tag, exprString(op.E))
	case OpDestroyTag:
		return fmt.Sprintf("untag   %q", op.Tag)
	case OpConstrain:
		return fmt.Sprintf("assert  %s", condString(op.C))
	case OpFail:
		return fmt.Sprintf("fail    %q", op.Msg)
	case OpIf:
		return fmt.Sprintf("branch  %s ? seg%d : seg%d", condString(op.C), op.Then, op.Else)
	case OpFor:
		if op.For.Re == nil {
			return fmt.Sprintf("for     %q (bad pattern)", op.For.Pattern)
		}
		return fmt.Sprintf("for     %q", op.For.Pattern)
	case OpForward:
		return fmt.Sprintf("forward -> %d", op.Port)
	case OpFork:
		parts := make([]string, len(op.Ports))
		for i, pt := range op.Ports {
			parts[i] = fmt.Sprintf("%d", pt)
		}
		return "fork    -> {" + strings.Join(parts, ",") + "}"
	case OpSub:
		return fmt.Sprintf("sub     seg%d", op.Sub)
	case OpUnknown:
		return fmt.Sprintf("unknown %q", op.Msg)
	}
	return fmt.Sprintf("op?%d", op.Kind)
}

func lvString(lv LV) string {
	if lv.Err != "" {
		return "<" + lv.Err + ">"
	}
	if lv.IsHdr {
		if lv.Tag == "" {
			return fmt.Sprintf("hdr[%d:%d]", lv.Rel, lv.Size)
		}
		return fmt.Sprintf("hdr[Tag(%s)%+d:%d]", lv.Tag, lv.Rel, lv.Size)
	}
	return lv.Key.String()
}

func exprString(e *CExpr) string {
	var s string
	switch e.Kind {
	case ENum:
		s = fmt.Sprintf("%d:w%d", e.V, e.W)
	case ESym:
		s = fmt.Sprintf("fresh(%s:w%d)", e.Name, e.W)
	case ERef:
		s = lvString(e.LV)
	case ETagVal:
		s = fmt.Sprintf("Tag(%s)%+d", e.Tag, e.Rel)
	case EArith:
		opc := "+"
		if e.Minus {
			opc = "-"
		}
		s = "(" + exprString(e.A) + " " + opc + " " + exprString(e.B) + ")"
	default:
		s = "<" + e.Err + ">"
	}
	if e.Folded != nil {
		s += fmt.Sprintf(" [folded=%s:w%d]", e.Folded, e.Folded.Width)
	}
	return s
}

// condString renders a condition compactly; very wide And/Or nodes (egress
// table guards) are elided to keep dumps readable.
func condString(c *CCond) string {
	var s string
	switch c.Kind {
	case CBool:
		s = fmt.Sprintf("%v", c.B)
	case CCmp:
		s = exprString(c.L) + " " + c.Op.String() + " " + exprString(c.R)
	case CPrefix:
		s = fmt.Sprintf("%s in %d/%d", exprString(c.L), c.Val, c.PLen)
	case CMasked:
		s = fmt.Sprintf("(%s & %#x) == %#x", exprString(c.L), c.Mask, c.Val)
	case CMetaPresent:
		s = "present(" + c.Key.String() + ")"
	case CAnd, COr, CIntervalTable:
		sep := " & "
		if c.Kind != CAnd {
			sep = " | "
		}
		if len(c.Cs) > 8 {
			s = fmt.Sprintf("(%s%s... %d terms)", condString(c.Cs[0]), sep, len(c.Cs))
		} else {
			parts := make([]string, len(c.Cs))
			for i, sub := range c.Cs {
				parts[i] = condString(sub)
			}
			s = "(" + strings.Join(parts, sep) + ")"
		}
		if it := c.IT; it != nil {
			if it.Grouped {
				s += fmt.Sprintf(" [itable %d rows, %d groups]", len(it.Rows), len(it.Groups))
			} else {
				s += fmt.Sprintf(" [itable %d rows, %d spans]", len(it.Rows), it.Table.Len())
			}
		}
	case CNot:
		s = "!(" + condString(c.C) + ")"
	}
	if c.HasStatic {
		if c.StaticErr != "" {
			s += fmt.Sprintf(" [static-err=%q]", c.StaticErr)
		} else {
			s += fmt.Sprintf(" [static=%s]", c.Static)
		}
	}
	return s
}
