package prog

import (
	"errors"
	"fmt"

	"symnet/internal/expr"
	"symnet/internal/memory"
)

// Env supplies the runtime facilities compiled-expression evaluation needs:
// packet memory reads, tag resolution, and fresh-symbol allocation. The
// engine adapts its per-path state to this interface; compile-time constant
// folding passes nil (static nodes never touch it).
type Env interface {
	ReadHdr(off int64, size int) (expr.Lin, error)
	ReadMeta(key memory.MetaKey) (expr.Lin, error)
	Tag(name string) (int64, bool)
	MetaExists(key memory.MetaKey) bool
	Fresh(width int, name string) expr.Lin
	// OrTreeGuards selects the reference Or-tree evaluation for lowered
	// interval-table guards (core.Options.OrTreeGuards). The default, false,
	// consumes the packed span tables.
	OrTreeGuards() bool
}

// evalErrf builds a model-level evaluation failure. Formats are kept in
// lockstep with the AST interpreter (internal/core/eval.go) so failed paths
// carry byte-identical messages; the differential tests pin this.
func evalErrf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

// ResolveOff turns a pre-resolved l-value's offset into an absolute bit
// offset, consulting the packet's tags only when the compile-time fold could
// not (Tag != "").
func ResolveOff(env Env, lv LV) (int64, error) {
	if lv.Tag == "" {
		return lv.Rel, nil
	}
	base, ok := env.Tag(lv.Tag)
	if !ok {
		return 0, evalErrf("access through unset tag %q", lv.Tag)
	}
	return base + lv.Rel, nil
}

// ReadLV reads the current value of a pre-resolved l-value.
func ReadLV(env Env, lv LV) (expr.Lin, error) {
	if lv.Err != "" {
		return expr.Lin{}, errors.New(lv.Err)
	}
	if lv.IsHdr {
		off, err := ResolveOff(env, lv)
		if err != nil {
			return expr.Lin{}, err
		}
		return env.ReadHdr(off, lv.Size)
	}
	return env.ReadMeta(lv.Key)
}

// EvalExpr lowers a compiled expression to a linear term; hint supplies a
// width for adaptable-width literals (0 when unknown; such literals default
// to 64 bits). Nodes folded at compile time return their precomputed value.
func EvalExpr(env Env, e *CExpr, hint int) (expr.Lin, error) {
	if e.Folded != nil {
		return *e.Folded, nil
	}
	if e.Err != "" {
		return expr.Lin{}, errors.New(e.Err)
	}
	switch e.Kind {
	case ENum:
		w := e.W
		if w == 0 {
			w = hint
		}
		if w == 0 {
			w = 64
		}
		return expr.Const(e.V, w), nil
	case ESym:
		w := e.W
		if w == 0 {
			w = hint
		}
		if w == 0 {
			w = 64
		}
		return env.Fresh(w, e.Name), nil
	case ERef:
		return ReadLV(env, e.LV)
	case ETagVal:
		base, ok := env.Tag(e.Tag)
		if !ok {
			return expr.Lin{}, evalErrf("TagVal of unset tag %q", e.Tag)
		}
		return expr.Const(uint64(base+e.Rel), 64), nil
	case EArith:
		return evalArith(env, e.A, e.B, hint, e.Minus)
	}
	return expr.Lin{}, evalErrf("unknown compiled expression kind %d", e.Kind)
}

// evalArith handles A+B and A-B under SEFL's linearity restriction,
// mirroring the AST interpreter.
func evalArith(env Env, a, b *CExpr, hint int, sub bool) (expr.Lin, error) {
	la, err := EvalExpr(env, a, hint)
	if err != nil {
		return expr.Lin{}, err
	}
	lb, err := EvalExpr(env, b, la.Width)
	if err != nil {
		return expr.Lin{}, err
	}
	va, aConst := la.ConstVal()
	vb, bConst := lb.ConstVal()
	switch {
	case aConst && bConst:
		w := la.Width
		if lb.Width > w {
			w = lb.Width
		}
		if sub {
			return expr.Const(va-vb, w), nil
		}
		return expr.Const(va+vb, w), nil
	case !aConst && bConst:
		if sub {
			return la.SubConst(vb), nil
		}
		return la.AddConst(vb), nil
	case aConst && !bConst:
		if sub {
			// c - sym needs a -1 coefficient, outside SEFL's term language.
			return expr.Lin{}, evalErrf("unsupported expression: constant minus symbolic value")
		}
		return lb.AddConst(va), nil
	default:
		return expr.Lin{}, evalErrf("unsupported expression: symbolic plus symbolic")
	}
}

// EvalCond lowers a compiled condition to a solver condition. Conditions
// evaluated at compile time replay their precomputed value or error; large
// symbol-free conditions memoize their last evaluation keyed by the exact
// dynamic inputs (packet reads), so re-asserting a table-wide guard along
// thousands of paths builds its condition tree once per distinct input
// vector instead of once per visit. A memo hit returns a condition
// structurally identical to what a fresh build would produce (evaluation of
// a symbol-free condition is a pure function of its reads), so results are
// byte-identical with or without hits.
func EvalCond(env Env, c *CCond) (expr.Cond, error) {
	if c.HasStatic {
		if c.StaticErr != "" {
			return nil, errors.New(c.StaticErr)
		}
		return c.Static, nil
	}
	if c.Kind == CIntervalTable && env != nil && !env.OrTreeGuards() {
		if cond, ok, err := evalTable(env, c.IT); ok {
			return cond, err
		}
		// The runtime value shapes are not the ones the table was compiled
		// for (width drift, symbolic group field): fall through to the
		// reference Or-tree evaluation, which handles every case. The atomic
		// is noise next to the tree walk it precedes.
		itableFallbacks.Add(1)
	}
	if c.Memoizable {
		if key, ok := gatherInputs(env, c); ok {
			if m := c.memo.Load(); m != nil && m.key == key {
				if m.err != "" {
					return nil, errors.New(m.err)
				}
				return m.cond, nil
			}
			cond, err := evalCondDynamic(env, c)
			nm := &condMemo{key: key, cond: cond}
			if err != nil {
				nm.err = err.Error()
				nm.cond = nil
			}
			c.memo.Store(nm)
			return cond, err
		}
	}
	return evalCondDynamic(env, c)
}

// gatherInputs performs the condition's distinct dynamic reads (collected
// at compile time) and chains their fingerprints into the memo key. It
// reports false when a read is unavailable (it would error during
// evaluation): the caller falls back to the uncached path, which reproduces
// the error in evaluation order. Reads are pure, so reading them here and
// again on a memo miss is safe.
func gatherInputs(env Env, c *CCond) (expr.Fp, bool) {
	f := expr.Fp{Hi: 0x9e3779b97f4a7c15, Lo: 0x517cc1b727220a95}
	for i := range c.Inputs {
		in := &c.Inputs[i]
		switch in.Kind {
		case InRef:
			v, err := ReadLV(env, in.LV)
			if err != nil {
				return f, false
			}
			f = f.Chain(expr.HashLin(v))
		case InTag:
			base, ok := env.Tag(in.Tag)
			if !ok {
				return f, false
			}
			f = f.Chain(expr.Fp{Hi: uint64(base), Lo: uint64(base) ^ 0xa5a5a5a5})
		case InMetaPresent:
			if env.MetaExists(in.Key) {
				f = f.Chain(expr.Fp{Hi: 1, Lo: 1})
			} else {
				f = f.Chain(expr.Fp{Hi: 2, Lo: 2})
			}
		}
	}
	return f, true
}

// evalCondDynamic evaluates a condition node ignoring its own static
// shortcut (children still use theirs); the compiler calls it to compute
// that shortcut in the first place.
func evalCondDynamic(env Env, c *CCond) (expr.Cond, error) {
	switch c.Kind {
	case CBool:
		return expr.Bool(c.B), nil
	case CCmp:
		l, err := EvalExpr(env, c.L, 0)
		if err != nil {
			return nil, err
		}
		r, err := EvalExpr(env, c.R, l.Width)
		if err != nil {
			return nil, err
		}
		l, r, err = coerceWidths(l, r)
		if err != nil {
			return nil, err
		}
		return expr.NewCmp(c.Op, l, r), nil
	case CPrefix:
		l, err := EvalExpr(env, c.L, c.PW)
		if err != nil {
			return nil, err
		}
		return expr.NewPrefix(l, c.Val, c.PLen), nil
	case CMasked:
		l, err := EvalExpr(env, c.L, 0)
		if err != nil {
			return nil, err
		}
		return expr.NewMatch(l, c.Mask, c.Val), nil
	case CMetaPresent:
		return expr.Bool(env.MetaExists(c.Key)), nil
	case CAnd:
		out := make([]expr.Cond, 0, len(c.Cs))
		for _, sub := range c.Cs {
			lc, err := EvalCond(env, sub)
			if err != nil {
				return nil, err
			}
			out = append(out, lc)
		}
		return expr.NewAnd(out...), nil
	case COr, CIntervalTable:
		out := make([]expr.Cond, 0, len(c.Cs))
		for _, sub := range c.Cs {
			lc, err := EvalCond(env, sub)
			if err != nil {
				return nil, err
			}
			out = append(out, lc)
		}
		return expr.NewOr(out...), nil
	case CNot:
		lc, err := EvalCond(env, c.C)
		if err != nil {
			return nil, err
		}
		return expr.NewNot(lc), nil
	}
	return nil, evalErrf("unknown compiled condition kind %d", c.Kind)
}

// evalTable evaluates a lowered guard through its packed span table: one
// field read, then either a binary-search membership test (concrete field,
// yielding the same Bool the folded Or-tree would) or an expr.InSet the
// solver consumes with a single domain intersection (symbolic field). The
// read order matches the reference evaluation's first disjunct, so read
// errors surface identically. ok=false requests the Or-tree fallback.
func evalTable(env Env, it *ITable) (expr.Cond, bool, error) {
	v, err := ReadLV(env, it.F)
	if err != nil {
		return nil, true, err
	}
	if !it.Grouped {
		if v.Width != it.W {
			return nil, false, nil
		}
		return expr.NewInSet(v, it.Table), true, nil
	}
	v2, err := ReadLV(env, it.F2)
	if err != nil {
		return nil, true, err
	}
	if v.Width != it.W || v2.Width != it.W2 {
		return nil, false, nil
	}
	key, konst := v.ConstVal()
	if !konst {
		// A symbolic group field would need a relational encoding; the
		// Or-tree reference handles it (it is not a shape the egress models
		// produce).
		return nil, false, nil
	}
	g := it.group(key)
	if g == nil {
		return expr.Bool(false), true, nil
	}
	return expr.NewInSet(v2, g.Table), true, nil
}

// coerceWidths reconciles operand widths exactly as the AST interpreter
// does: a concrete operand adopts the symbolic operand's width (value
// permitting); two symbolic operands must already agree.
func coerceWidths(l, r expr.Lin) (expr.Lin, expr.Lin, error) {
	if l.Width == r.Width {
		return l, r, nil
	}
	if lv, ok := l.ConstVal(); ok {
		if lv&^expr.Mask(r.Width) != 0 {
			return l, r, evalErrf("constant %d does not fit in %d bits", lv, r.Width)
		}
		return expr.Const(lv, r.Width), r, nil
	}
	if rv, ok := r.ConstVal(); ok {
		if rv&^expr.Mask(l.Width) != 0 {
			return l, r, evalErrf("constant %d does not fit in %d bits", rv, l.Width)
		}
		return l, expr.Const(rv, l.Width), nil
	}
	return l, r, evalErrf("width mismatch: %d-bit vs %d-bit symbolic operands", l.Width, r.Width)
}
