package prog

import (
	"strings"
	"testing"

	"symnet/internal/expr"
	"symnet/internal/memory"
	"symnet/internal/sefl"
)

func countOps(p *Program, kind OpKind) int {
	n := 0
	for i := range p.Ops {
		if p.Ops[i].Kind == kind {
			n++
		}
	}
	return n
}

// TestDeadCodeAfterTerminators: ops after an unconditional Fail/Forward/Fork
// are dropped, including across spliced nested blocks, and an If whose
// branches all terminate ends its segment.
func TestDeadCodeAfterTerminators(t *testing.T) {
	p := Compile(sefl.Seq(
		sefl.Assign{LV: sefl.Meta{Name: "a"}, E: sefl.C(1)},
		sefl.Forward{Port: 0},
		sefl.Assign{LV: sefl.Meta{Name: "dead"}, E: sefl.C(2)},
		sefl.Fail{Msg: "dead"},
	), "e", 0, "t")
	if got := len(p.Ops); got != 2 {
		t.Fatalf("ops after DCE = %d, want 2:\n%s", got, p)
	}

	p = Compile(sefl.Seq(
		sefl.If{C: sefl.Eq(sefl.Ref{LV: sefl.Meta{Name: "k"}}, sefl.C(1)),
			Then: sefl.Forward{Port: 0},
			Else: sefl.Fail{Msg: "no"}},
		sefl.Assign{LV: sefl.Meta{Name: "dead"}, E: sefl.C(2)},
	), "e", 0, "t")
	if n := countOps(p, OpAssign); n != 0 {
		t.Fatalf("assign after always-terminating If survived DCE:\n%s", p)
	}
	if !p.Segs[p.Entry].Terminates {
		t.Fatalf("entry segment should be marked terminating:\n%s", p)
	}

	// A nested block behind the terminator is dead too.
	p = Compile(sefl.Seq(
		sefl.Fail{Msg: "stop"},
		sefl.Seq(sefl.NoOp{}, sefl.NoOp{}),
	), "e", 0, "t")
	if got := len(p.Ops); got != 1 {
		t.Fatalf("ops after DCE = %d, want 1:\n%s", got, p)
	}
}

// TestGuardDedup: structurally equal conditions compile to one shared node.
func TestGuardDedup(t *testing.T) {
	guard := func() sefl.Cond {
		return sefl.AndC(
			sefl.Eq(sefl.Ref{LV: sefl.Hdr{Off: sefl.At(0), Size: 32}}, sefl.C(5)),
			sefl.Lt(sefl.Ref{LV: sefl.Meta{Name: "m"}}, sefl.C(9)),
		)
	}
	p := Compile(sefl.Seq(
		sefl.Constrain{C: guard()},
		sefl.Constrain{C: guard()},
		sefl.Constrain{C: sefl.NotC(guard())},
		sefl.Forward{Port: 0},
	), "e", 0, "t")
	var consts []*CCond
	for i := range p.Ops {
		if p.Ops[i].Kind == OpConstrain {
			consts = append(consts, p.Ops[i].C)
		}
	}
	if len(consts) != 3 {
		t.Fatalf("want 3 constrain ops, got %d", len(consts))
	}
	if consts[0] != consts[1] {
		t.Fatal("equal guards were not deduplicated to one node")
	}
	if consts[2].Kind != CNot || consts[2].C != consts[0] {
		t.Fatal("negated guard does not share the inner node")
	}
	// Dedup stats: 2 And roots seen, 1 kept (plus leaves and the Not).
	if p.Conds >= p.CondsSeen {
		t.Fatalf("dedup had no effect: %d/%d", p.Conds, p.CondsSeen)
	}
}

// TestStaticFolding: conditions and expressions without packet reads fold
// at compile time to exactly what runtime evaluation would produce.
func TestStaticFolding(t *testing.T) {
	p := Compile(sefl.Seq(
		sefl.Constrain{C: sefl.Lt(sefl.CW(3, 16), sefl.CW(5, 16))},
		sefl.Assign{LV: sefl.Hdr{Off: sefl.At(0), Size: 32}, E: sefl.Add{A: sefl.C(40), B: sefl.C(2)}},
		sefl.Forward{Port: 0},
	), "e", 0, "t")
	c := p.Ops[0].C
	if !c.HasStatic || c.StaticErr != "" {
		t.Fatalf("static comparison not folded: %+v", c)
	}
	if b, ok := c.Static.(expr.Bool); !ok || !bool(b) {
		t.Fatalf("folded value = %v, want true", c.Static)
	}
	e := p.Ops[1].E
	if e.Folded == nil {
		t.Fatalf("constant assign expression not folded:\n%s", p)
	}
	if v, ok := e.Folded.ConstVal(); !ok || v != 42 || e.Folded.Width != 32 {
		t.Fatalf("folded = %v, want 42:w32", e.Folded)
	}

	// A static condition whose evaluation errors folds to that error.
	p = Compile(sefl.Seq(
		sefl.Constrain{C: sefl.Eq(sefl.CW(256, 16), sefl.CW(1, 8))},
		sefl.Forward{Port: 0},
	), "e", 0, "t")
	c = p.Ops[0].C
	if !c.HasStatic || !strings.Contains(c.StaticErr, "does not fit in") {
		t.Fatalf("static error not folded: %+v", c)
	}
}

// TestLValueResolution: metadata binds its instance at compile time and
// tag-free offsets are absolute.
func TestLValueResolution(t *testing.T) {
	p := Compile(sefl.Seq(
		sefl.Assign{LV: sefl.Meta{Name: "g"}, E: sefl.C(1)},
		sefl.Assign{LV: sefl.Meta{Name: "l", Local: true}, E: sefl.C(2)},
		sefl.Assign{LV: sefl.Meta{Name: "p", Instance: 9, Pinned: true}, E: sefl.C(3)},
		sefl.Assign{LV: sefl.Hdr{Off: sefl.At(96), Size: 32}, E: sefl.C(4)},
		sefl.Assign{LV: sefl.Hdr{Off: sefl.FromTag("L3", 16), Size: 16}, E: sefl.C(5)},
		sefl.Forward{Port: 0},
	), "e", 7, "t")
	wantKeys := []memory.MetaKey{
		{Name: "g", Instance: memory.GlobalScope},
		{Name: "l", Instance: 7},
		{Name: "p", Instance: 9},
	}
	for i, want := range wantKeys {
		if got := p.Ops[i].LV.Key; got != want {
			t.Fatalf("op %d key = %v, want %v", i, got, want)
		}
	}
	if lv := p.Ops[3].LV; !lv.IsHdr || lv.Tag != "" || lv.Rel != 96 || lv.Size != 32 {
		t.Fatalf("absolute header LV = %+v", lv)
	}
	if lv := p.Ops[4].LV; !lv.IsHdr || lv.Tag != "L3" || lv.Rel != 16 {
		t.Fatalf("tagged header LV = %+v", lv)
	}
}

// TestForkIsMultiSuccessorTerminator and bad For patterns compile to
// runtime-failing ops rather than compile errors.
func TestTerminatorsAndBadPattern(t *testing.T) {
	p := Compile(sefl.Seq(
		sefl.Fork{Ports: []int{0, 2, 4}},
	), "e", 0, "t")
	if p.Ops[0].Kind != OpFork || len(p.Ops[0].Ports) != 3 {
		t.Fatalf("fork op = %+v", p.Ops[0])
	}
	if !p.Segs[p.Entry].Terminates {
		t.Fatal("fork must terminate its segment")
	}

	p = Compile(sefl.For{Pattern: "(", Body: func(k sefl.Meta) sefl.Instr { return sefl.NoOp{} }},
		"e", 0, "t")
	if p.Ops[0].Kind != OpFor || p.Ops[0].For.Re != nil || p.Ops[0].For.Err == "" {
		t.Fatalf("bad pattern op = %+v", p.Ops[0])
	}
}

// TestSpliceAnalysis: blocks splice into their parent unless a preceding
// fork and contained Symbolic would reorder allocation.
func TestSpliceAnalysis(t *testing.T) {
	// No fork before the nested block: spliced, one segment.
	p := Compile(sefl.Seq(
		sefl.Assign{LV: sefl.Meta{Name: "a"}, E: sefl.C(1)},
		sefl.Seq(
			sefl.Assign{LV: sefl.Meta{Name: "b"}, E: sefl.Symbolic{W: 8}},
			sefl.Assign{LV: sefl.Meta{Name: "c"}, E: sefl.C(2)},
		),
		sefl.Forward{Port: 0},
	), "e", 0, "t")
	if n := countOps(p, OpSub); n != 0 {
		t.Fatalf("block after straight-line code must splice:\n%s", p)
	}

	// Fork before a Symbolic-bearing block: must stay a sub-segment.
	p = Compile(sefl.Seq(
		sefl.If{C: sefl.CBool(true), Then: sefl.NoOp{}, Else: sefl.NoOp{}},
		sefl.Seq(
			sefl.Assign{LV: sefl.Meta{Name: "b"}, E: sefl.Symbolic{W: 8}},
			sefl.Assign{LV: sefl.Meta{Name: "c"}, E: sefl.C(2)},
		),
		sefl.Forward{Port: 0},
	), "e", 0, "t")
	if n := countOps(p, OpSub); n != 1 {
		t.Fatalf("symbolic block behind a fork must not splice:\n%s", p)
	}

	// Fork before a Symbolic-free block: splicing is safe.
	p = Compile(sefl.Seq(
		sefl.If{C: sefl.CBool(true), Then: sefl.NoOp{}, Else: sefl.NoOp{}},
		sefl.Seq(
			sefl.Assign{LV: sefl.Meta{Name: "b"}, E: sefl.C(3)},
			sefl.Assign{LV: sefl.Meta{Name: "c"}, E: sefl.C(2)},
		),
		sefl.Forward{Port: 0},
	), "e", 0, "t")
	if n := countOps(p, OpSub); n != 0 {
		t.Fatalf("symbol-free block may splice behind a fork:\n%s", p)
	}
}

// TestMemoGating: only large, symbol-free, non-static guards get the
// evaluation memo, and their distinct inputs are collected once.
func TestMemoGating(t *testing.T) {
	ref := sefl.Ref{LV: sefl.Hdr{Off: sefl.At(0), Size: 32}}
	var big []sefl.Cond
	for i := 0; i < 64; i++ {
		big = append(big, sefl.Eq(ref, sefl.C(uint64(i))))
	}
	p := Compile(sefl.Seq(
		sefl.Constrain{C: sefl.OrC(big...)},
		sefl.Constrain{C: sefl.Eq(ref, sefl.C(1))},
		sefl.Constrain{C: sefl.Eq(sefl.Symbolic{W: 32}, ref)},
		sefl.Forward{Port: 0},
	), "e", 0, "t")
	bigC, smallC, symC := p.Ops[0].C, p.Ops[1].C, p.Ops[2].C
	if !bigC.Memoizable {
		t.Fatalf("table-wide guard not memoizable: words=%d", bigC.Words)
	}
	if len(bigC.Inputs) != 1 {
		t.Fatalf("distinct inputs = %d, want 1 (one field read %d times)", len(bigC.Inputs), 64)
	}
	if smallC.Memoizable {
		t.Fatal("small guard should not pay memo overhead")
	}
	if symC.HasSym || symC.Memoizable {
		// The Eq's left side allocates a fresh symbol; HasSym is computed
		// on the root Cmp node.
		if symC.Memoizable {
			t.Fatal("symbol-allocating guard must not be memoized")
		}
	}
}
