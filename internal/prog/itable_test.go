package prog

import (
	"reflect"
	"testing"

	"symnet/internal/expr"
	"symnet/internal/memory"
	"symnet/internal/sefl"
)

var (
	itMAC  = sefl.Hdr{Off: sefl.At(0), Size: 48, Name: "Mac"}
	itVLAN = sefl.Hdr{Off: sefl.At(48), Size: 16, Name: "Vlan"}
	itIP   = sefl.Hdr{Off: sefl.At(64), Size: 32, Name: "Ip"}
)

func macGuard(n int) sefl.Cond {
	cs := make([]sefl.Cond, n)
	for i := range cs {
		cs[i] = sefl.Eq(sefl.Ref{LV: itMAC}, sefl.CW(uint64(i*2), 48))
	}
	return sefl.OrC(cs...)
}

func vlanGuard(pairs [][2]uint64) sefl.Cond {
	cs := make([]sefl.Cond, len(pairs))
	for i, p := range pairs {
		cs[i] = sefl.AndC(
			sefl.Eq(sefl.Ref{LV: itVLAN}, sefl.CW(p[0], 16)),
			sefl.Eq(sefl.Ref{LV: itMAC}, sefl.CW(p[1], 48)),
		)
	}
	return sefl.OrC(cs...)
}

func prefixGuard() sefl.Cond {
	dst := sefl.Ref{LV: itIP}
	return sefl.OrC(
		sefl.Prefix{E: dst, Value: 0x0a000000, Len: 24, Width: 32},
		sefl.Prefix{E: dst, Value: 0x0a000100, Len: 24, Width: 32},
		sefl.AndC(
			sefl.Prefix{E: dst, Value: 0x0a010000, Len: 16, Width: 32},
			sefl.NotC(sefl.Prefix{E: dst, Value: 0x0a010200, Len: 24, Width: 32}),
		),
		sefl.Prefix{E: dst, Value: 0x0b000000, Len: 8, Width: 32},
	)
}

func guardCond(t *testing.T, c sefl.Cond) *CCond {
	t.Helper()
	p := Compile(sefl.Seq(sefl.Constrain{C: c}, sefl.Forward{Port: 0}), "e", 0, "t")
	return p.Ops[0].C
}

// itEnv is a minimal Env whose header reads come from a fixed map.
type itEnv struct {
	hdrs   map[int64]expr.Lin
	orTree bool
}

func (e *itEnv) ReadHdr(off int64, size int) (expr.Lin, error) {
	if v, ok := e.hdrs[off]; ok {
		return v, nil
	}
	return expr.Lin{}, evalErrf("read of unallocated header [%d:%d]", off, size)
}
func (e *itEnv) ReadMeta(key memory.MetaKey) (expr.Lin, error) {
	return expr.Lin{}, evalErrf("no metadata")
}
func (e *itEnv) Tag(name string) (int64, bool)  { return 0, false }
func (e *itEnv) MetaExists(memory.MetaKey) bool { return false }
func (e *itEnv) Fresh(w int, n string) expr.Lin { return expr.Lin{Sym: 99, Width: w} }
func (e *itEnv) OrTreeGuards() bool             { return e.orTree }

// TestLoweringDetection: the egress shapes lower, near-miss shapes do not.
func TestLoweringDetection(t *testing.T) {
	if c := guardCond(t, macGuard(8)); c.Kind != CIntervalTable || c.IT == nil || c.IT.Grouped {
		t.Fatalf("mac guard not lowered: kind=%d", c.Kind)
	}
	if c := guardCond(t, prefixGuard()); c.Kind != CIntervalTable || c.IT.Grouped {
		t.Fatalf("prefix guard not lowered: kind=%d", c.Kind)
	}
	if c := guardCond(t, vlanGuard([][2]uint64{{1, 10}, {1, 12}, {2, 10}, {2, 14}})); c.Kind != CIntervalTable || !c.IT.Grouped {
		t.Fatalf("vlan guard not lowered/grouped: kind=%d", c.Kind)
	}

	// Below the entry threshold: stays an Or.
	if c := guardCond(t, macGuard(itMinEntries-1)); c.Kind != COr {
		t.Fatalf("tiny guard lowered: kind=%d", c.Kind)
	}
	// Mixed fields in a single-field shape: stays an Or.
	mixed := sefl.OrC(
		sefl.Eq(sefl.Ref{LV: itMAC}, sefl.CW(1, 48)),
		sefl.Eq(sefl.Ref{LV: itVLAN}, sefl.CW(2, 16)),
		sefl.Eq(sefl.Ref{LV: itMAC}, sefl.CW(3, 48)),
		sefl.Eq(sefl.Ref{LV: itMAC}, sefl.CW(4, 48)),
	)
	if c := guardCond(t, mixed); c.Kind != COr {
		t.Fatalf("mixed-field guard lowered: kind=%d", c.Kind)
	}
	// Adaptive-width constants (W == 0) cannot pin coercion: stays an Or.
	loose := sefl.OrC(
		sefl.Eq(sefl.Ref{LV: itMAC}, sefl.C(1)),
		sefl.Eq(sefl.Ref{LV: itMAC}, sefl.C(2)),
		sefl.Eq(sefl.Ref{LV: itMAC}, sefl.C(3)),
		sefl.Eq(sefl.Ref{LV: itMAC}, sefl.C(4)),
	)
	if c := guardCond(t, loose); c.Kind != COr {
		t.Fatalf("adaptive-width guard lowered: kind=%d", c.Kind)
	}
	// Metadata reads are not table fields.
	meta := sefl.Ref{LV: sefl.Meta{Name: "m"}}
	metaOr := sefl.OrC(
		sefl.Eq(meta, sefl.CW(1, 16)), sefl.Eq(meta, sefl.CW(2, 16)),
		sefl.Eq(meta, sefl.CW(3, 16)), sefl.Eq(meta, sefl.CW(4, 16)),
	)
	if c := guardCond(t, metaOr); c.Kind != COr {
		t.Fatalf("metadata guard lowered: kind=%d", c.Kind)
	}
}

// TestLoweredSpansMerge: adjacent and overlapping disjunct ranges merge into
// canonical spans, exclusions carve holes.
func TestLoweredSpansMerge(t *testing.T) {
	c := guardCond(t, prefixGuard())
	spans := c.IT.Table.Spans()
	want := []expr.Span{
		// 10.0.0.0/24 and 10.0.1.0/24 are adjacent: one span.
		{Lo: 0x0a000000, Hi: 0x0a0001ff},
		// 10.1.0.0/16 minus 10.1.2.0/24.
		{Lo: 0x0a010000, Hi: 0x0a0101ff},
		{Lo: 0x0a010300, Hi: 0x0a01ffff},
		// 11.0.0.0/8.
		{Lo: 0x0b000000, Hi: 0x0bffffff},
	}
	if !reflect.DeepEqual(spans, want) {
		t.Fatalf("spans = %x, want %x", spans, want)
	}

	// Duplicate equalities collapse.
	dup := sefl.OrC(
		sefl.Eq(sefl.Ref{LV: itMAC}, sefl.CW(5, 48)),
		sefl.Eq(sefl.Ref{LV: itMAC}, sefl.CW(5, 48)),
		sefl.Eq(sefl.Ref{LV: itMAC}, sefl.CW(6, 48)),
		sefl.Eq(sefl.Ref{LV: itMAC}, sefl.CW(7, 48)),
	)
	if c := guardCond(t, dup); c.IT.Table.Len() != 1 || !c.IT.Table.Contains(5) || !c.IT.Table.Contains(7) {
		t.Fatalf("duplicate/adjacent spans = %v", c.IT.Table)
	}
}

// TestEvalTableModes: table evaluation matches the Or-tree reference on
// concrete hits/misses, produces InSet on symbolic fields, falls back on
// width drift, and handles group misses and single-entry groups.
func TestEvalTableModes(t *testing.T) {
	mac := guardCond(t, macGuard(8))
	env := &itEnv{hdrs: map[int64]expr.Lin{0: expr.Const(6, 48)}}
	ref := &itEnv{hdrs: env.hdrs, orTree: true}

	got, err := EvalCond(env, mac)
	if err != nil || got != expr.Bool(true) {
		t.Fatalf("concrete hit = %v, %v", got, err)
	}
	want, err := EvalCond(ref, mac)
	if err != nil || got != want {
		t.Fatalf("reference disagrees: %v vs %v", got, want)
	}
	env.hdrs[0] = expr.Const(5, 48) // odd values are not in the table
	got, _ = EvalCond(env, mac)
	want, _ = EvalCond(ref, mac)
	if got != expr.Bool(false) || want != got {
		t.Fatalf("concrete miss = %v, reference %v", got, want)
	}

	// Symbolic field: packed membership with the lowered table.
	env.hdrs[0] = expr.Lin{Sym: 4, Width: 48}
	got, err = EvalCond(env, mac)
	if err != nil {
		t.Fatal(err)
	}
	is, ok := got.(expr.InSet)
	if !ok || is.T != mac.IT.Table || is.L.Sym != 4 {
		t.Fatalf("symbolic eval = %#v", got)
	}

	// Width drift falls back to the Or-tree (here: 16-bit value in a 48-bit
	// field errs identically in both modes via constant coercion).
	env.hdrs[0] = expr.Lin{Sym: 4, Width: 16}
	got, gotErr := EvalCond(env, mac)
	want, wantErr := EvalCond(ref, mac)
	if !reflect.DeepEqual(got, want) || !errEqual(gotErr, wantErr) {
		t.Fatalf("width-drift: table (%v, %v) vs reference (%v, %v)", got, gotErr, want, wantErr)
	}

	// Missing field read errors identically.
	delete(env.hdrs, 0)
	_, gotErr = EvalCond(env, mac)
	_, wantErr = EvalCond(ref, mac)
	if gotErr == nil || !errEqual(gotErr, wantErr) {
		t.Fatalf("read error: %v vs %v", gotErr, wantErr)
	}

	// Grouped: group hit (single-entry group), group miss (empty table for
	// that key), symbolic group field falls back.
	vl := guardCond(t, vlanGuard([][2]uint64{{1, 10}, {2, 20}, {2, 22}, {3, 30}}))
	genv := &itEnv{hdrs: map[int64]expr.Lin{48: expr.Const(1, 16), 0: expr.Lin{Sym: 7, Width: 48}}}
	gref := &itEnv{hdrs: genv.hdrs, orTree: true}
	got, err = EvalCond(genv, vl)
	if err != nil {
		t.Fatal(err)
	}
	if is, ok := got.(expr.InSet); !ok || is.T.Len() != 1 || !is.T.Contains(10) {
		t.Fatalf("single-entry group = %#v", got)
	}
	genv.hdrs[48] = expr.Const(9, 16) // no such vlan: empty table
	got, _ = EvalCond(genv, vl)
	want, _ = EvalCond(gref, vl)
	if got != expr.Bool(false) || want != got {
		t.Fatalf("group miss = %v, reference %v", got, want)
	}
	genv.hdrs[48] = expr.Lin{Sym: 8, Width: 16} // symbolic group field
	got, err = EvalCond(genv, vl)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.(expr.Or); !ok {
		t.Fatalf("symbolic group field should fall back to the Or-tree, got %#v", got)
	}
}

func errEqual(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}

// TestITRowsPackRoundTrip: the flat row stream is the exact inverse of the
// row list, including exclusions and pairs.
func TestITRowsPackRoundTrip(t *testing.T) {
	rows := []ITRow{
		{Kind: ITEq, V: 42},
		{Kind: ITPrefix, V: 0x0a000000, Len: 24},
		{Kind: ITPrefix, V: 0x0a010000, Len: 16, Excl: []ITExcl{{V: 0x0a010200, Len: 24}, {V: 0x0a010300, Len: 24}}},
		{Kind: ITEq, V: 7, Excl: []ITExcl{{V: 0x0a, Len: 8}}},
		{Kind: ITPair, V: 3, V2: 99},
	}
	got, err := expr.UnpackGuardRows(expr.PackGuardRows(rows))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Fatalf("round trip differs:\n got %+v\nwant %+v", got, rows)
	}
	// Truncated streams error instead of panicking.
	words := expr.PackGuardRows(rows)
	for _, cut := range []int{1, 3, len(words) - 1} {
		if _, err := expr.UnpackGuardRows(words[:cut]); err == nil {
			t.Errorf("truncated stream (%d words) decoded without error", cut)
		}
	}
}

// TestITableCodecRoundTrip: a program with lowered guards (single-field,
// exclusions, grouped) survives the wire with identical fingerprints,
// tables, children and dump — in both packed and tree wire forms.
func TestITableCodecRoundTrip(t *testing.T) {
	prog := sefl.Seq(
		sefl.Constrain{C: macGuard(8)},
		sefl.Constrain{C: prefixGuard()},
		sefl.Constrain{C: vlanGuard([][2]uint64{{1, 10}, {1, 12}, {2, 20}, {3, 30}})},
		sefl.Constrain{C: macGuard(8)}, // dedup: same node as op 0
		sefl.Forward{Port: 0},
	)
	p := Compile(prog, "e1", 4, "e1.in[0]")
	if p.Ops[0].C != p.Ops[3].C {
		t.Fatal("premise: equal lowered guards must share one node")
	}
	for _, packed := range []bool{true, false} {
		old := PackedWire
		PackedWire = packed
		w, err := EncodeProgram(p)
		PackedWire = old
		if err != nil {
			t.Fatalf("packed=%v encode: %v", packed, err)
		}
		q, err := DecodeProgram(w)
		if err != nil {
			t.Fatalf("packed=%v decode: %v", packed, err)
		}
		if q.String() != p.String() {
			t.Fatalf("packed=%v: decoded dump differs", packed)
		}
		for i := range []int{0, 1, 2} {
			oc, dc := p.Ops[i].C, q.Ops[i].C
			if dc.Kind != CIntervalTable || dc.FP != oc.FP || dc.Words != oc.Words || dc.Memoizable != oc.Memoizable {
				t.Fatalf("packed=%v op %d: node drifted: %+v", packed, i, dc)
			}
			if !reflect.DeepEqual(dc.IT.Rows, oc.IT.Rows) {
				t.Fatalf("packed=%v op %d: rows drifted", packed, i)
			}
			if oc.IT.Table != nil && !dc.IT.Table.Equal(oc.IT.Table) {
				t.Fatalf("packed=%v op %d: span table drifted", packed, i)
			}
			if len(dc.Cs) != len(oc.Cs) {
				t.Fatalf("packed=%v op %d: children count drifted", packed, i)
			}
			for j := range oc.Cs {
				if dc.Cs[j].FP != oc.Cs[j].FP {
					t.Fatalf("packed=%v op %d child %d: fingerprint drifted", packed, i, j)
				}
			}
		}
		if q.Ops[0].C != q.Ops[3].C {
			t.Fatalf("packed=%v: decoded equal guards no longer share one node", packed)
		}
		gq, gp := q.Ops[2].C.IT, p.Ops[2].C.IT
		if len(gq.Groups) != len(gp.Groups) {
			t.Fatalf("packed=%v: group count drifted", packed)
		}
		for gi := range gp.Groups {
			if gq.Groups[gi].Key != gp.Groups[gi].Key || !gq.Groups[gi].Table.Equal(gp.Groups[gi].Table) {
				t.Fatalf("packed=%v: group %d drifted", packed, gi)
			}
		}
	}
}

// TestPackedWireShrinksCondTab: the packed form must actually drop the
// per-disjunct nodes from the wire condition table.
func TestPackedWireShrinksCondTab(t *testing.T) {
	p := Compile(sefl.Seq(sefl.Constrain{C: macGuard(64)}, sefl.Forward{Port: 0}), "e", 0, "t")
	w, err := EncodeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.CondTab) != 1 {
		t.Fatalf("packed cond table has %d entries, want 1", len(w.CondTab))
	}
	old := PackedWire
	PackedWire = false
	wt, err := EncodeProgram(p)
	PackedWire = old
	if err != nil {
		t.Fatal(err)
	}
	if len(wt.CondTab) <= 64 {
		t.Fatalf("tree cond table has %d entries, expected > 64", len(wt.CondTab))
	}
}
