package prog_test

// Differential property tests for per-element summaries: with
// Options.Summaries set, every observable — path IDs, statuses, failure
// messages, histories, traces, final memory, symbol IDs, the constraint
// context's chained fingerprint, and run statistics — must be byte-identical
// to the IR reference path, over random programs and the real datasets, at
// 1/2/8 workers, with every dataset exercising both the summary fast path
// and the IR fallback (pinned via the summary.* counters).

import (
	"strings"
	"testing"

	"symnet/internal/core"
	"symnet/internal/datasets"
	"symnet/internal/obs"
	"symnet/internal/sched"
	"symnet/internal/sefl"
)

func init() {
	// The fallback gate's For body must be wire-constructible so gated
	// networks also work under dist (package registration happens in every
	// process that links this test binary).
	sefl.RegisterForBody("prog.test.sumgate", func(string) func(sefl.Meta) sefl.Instr {
		return func(sefl.Meta) sefl.Instr { return sefl.NoOp{} }
	})
}

// addFallbackGate prepends a one-hop pass-through element whose code starts
// with a For loop: a runtime no-op (the pattern matches no metadata) that is
// unsummarizable by construction, guaranteeing the dataset exercises the IR
// fallback path alongside the summary fast path.
func addFallbackGate(net *core.Network, inject core.PortRef) core.PortRef {
	g := net.AddElement("sumgate", "gate", 1, 1)
	g.SetInCode(0, sefl.Seq(
		sefl.NewFor("^__none__", "prog.test.sumgate", ""),
		sefl.Forward{Port: 0},
	))
	net.MustLink("sumgate", 0, inject.Elem, inject.Port)
	return core.PortRef{Elem: "sumgate", Port: 0}
}

// TestDifferentialSummariesRandom is the core summary property over random
// SEFL programs: summaries-on results must be byte-identical (full
// fingerprint, ctx chain and stats included) to summaries-off. The
// generator's For loops and post-branch Symbolic mints make unsummarizable
// elements common, so both verdicts are exercised across the seed set.
func TestDifferentialSummariesRandom(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 15
	}
	for seed := 0; seed < seeds; seed++ {
		g := newGen(int64(seed))
		net, inj := g.network()
		init := g.inject()
		opts := core.Options{MaxHops: 48, MaxPaths: 1 << 14, Trace: seed%4 == 0}

		ref, err := core.Run(net, inj, init, opts)
		if err != nil {
			t.Fatalf("seed %d: IR run: %v", seed, err)
		}
		want := fingerprint(ref)

		sumOpts := opts
		sumOpts.Summaries = true
		res, err := core.Run(net, inj, init, sumOpts)
		if err != nil {
			t.Fatalf("seed %d: summaries run: %v", seed, err)
		}
		if got := fingerprint(res); got != want {
			t.Fatalf("seed %d: summaries result differs from IR:\n--- IR ---\n%s--- summaries ---\n%s",
				seed, diffHead(want, got), diffHead(got, want))
		}
		if ref.Stats.Paths == 0 {
			t.Fatalf("seed %d: no paths explored", seed)
		}
	}
}

// TestDifferentialSummariesWorkers is the acceptance property on the real
// datasets: summaries-on must match summaries-off byte-for-byte at 1, 2 and
// 8 workers, and every dataset must report at least one summarized element
// (summary.built, summary.hits) and at least one IR fallback
// (summary.unsummarizable, summary.fallbacks) — the fallback gate prepended
// to each injection point guarantees the latter even on all-summarizable
// models.
func TestDifferentialSummariesWorkers(t *testing.T) {
	type workload struct {
		name   string
		net    *core.Network
		inject core.PortRef
		packet sefl.Instr
		opts   core.Options
	}
	d := datasets.NewDepartment(datasets.DepartmentConfig{
		NumAccessSwitches: 3, HostsPerSwitch: 24, Routes: 40, Seed: 5})
	bb := datasets.StanfordBackbone(6, 50)
	fh, fhInject := datasets.ForkHeavy(8, 3, 4)
	sh, shInject := datasets.SatHeavy(24)
	ws := []workload{
		{"department", d.Net, core.PortRef{Elem: "asw0", Port: 1}, d.OfficePacket(false), core.Options{MaxHops: 65}},
		{"backbone", bb.Net, core.PortRef{Elem: bb.Zones[0], Port: 2}, sefl.NewIPPacket(), core.Options{MaxHops: 65}},
		{"forkheavy", fh, fhInject, sefl.NewTCPPacket(), core.Options{MaxHops: 1 << 12}},
		{"satheavy", sh, shInject, sefl.NewTCPPacket(), core.Options{MaxHops: 65}},
	}
	for _, w := range ws {
		inj := addFallbackGate(w.net, w.inject)

		ref, err := sched.Run(w.net, inj, w.packet, w.opts, 1)
		if err != nil {
			t.Fatalf("%s: IR run: %v", w.name, err)
		}
		want := fingerprint(ref)
		if ref.Stats.Paths == 0 {
			t.Fatalf("%s: no paths explored", w.name)
		}

		for _, workers := range []int{1, 2, 8} {
			reg := obs.NewRegistry()
			opts := w.opts
			opts.Summaries = true
			opts.Obs = obs.New(reg, nil)
			res, err := sched.Run(w.net, inj, w.packet, opts, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: summaries run: %v", w.name, workers, err)
			}
			if got := fingerprint(res); got != want {
				t.Errorf("%s workers=%d: summaries result differs from IR:\n%s",
					w.name, workers, diffHead(want, got))
			}
			assertSummaryCounters(t, w.name, workers, reg, workers == 1)
		}
	}
}

// assertSummaryCounters pins that a run exercised both execution paths and
// attributed hits per element. Build counters (summary.built,
// summary.unsummarizable) move only on the run that first populates the
// element caches — later runs on the same network reuse them — so they are
// asserted only on the first run per workload.
func assertSummaryCounters(t *testing.T, name string, workers int, reg *obs.Registry, first bool) {
	t.Helper()
	snap := reg.Snapshot()
	want := []string{"summary.hits", "summary.fallbacks"}
	if first {
		want = append(want, "summary.built", "summary.unsummarizable")
	}
	for _, c := range want {
		if snap.Counters[c] < 1 {
			t.Errorf("%s workers=%d: counter %s = %d, want >= 1", name, workers, c, snap.Counters[c])
		}
	}
	perElem := int64(0)
	for k, v := range snap.Counters {
		if strings.HasPrefix(k, "summary.elem_hits.") {
			perElem += v
		}
	}
	if perElem != snap.Counters["summary.hits"] {
		t.Errorf("%s workers=%d: per-element hits sum to %d, summary.hits = %d",
			name, workers, perElem, snap.Counters["summary.hits"])
	}
}

// TestDifferentialSummariesRowSemantics pins the delicate row semantics on
// handcrafted elements: overlapping guards must apply in program (priority)
// order, and a row's rewrite must observe the value another arm of the row
// set wrote earlier on the same path.
func TestDifferentialSummariesRowSemantics(t *testing.T) {
	f0 := sefl.Hdr{Off: sefl.At(0), Size: 32, Name: "F0"}
	f1 := sefl.Hdr{Off: sefl.At(32), Size: 32, Name: "F1"}
	f2 := sefl.Hdr{Off: sefl.At(64), Size: 32, Name: "F2"}
	inject := sefl.Seq(
		sefl.Allocate{LV: f0, Size: 32},
		sefl.Assign{LV: f0, E: sefl.Symbolic{W: 32, Name: "F0"}},
		sefl.Allocate{LV: f1, Size: 32},
		sefl.Assign{LV: f1, E: sefl.C(0)},
		sefl.Allocate{LV: f2, Size: 32},
		sefl.Assign{LV: f2, E: sefl.C(0)},
	)
	cases := []struct {
		name string
		code sefl.Instr
	}{
		// Overlapping guards: F0 < 10 implies F0 < 100, so row order (first
		// match wins along each path) is observable in which port delivers.
		{"overlapping guard priority", sefl.If{
			C:    sefl.Lt(sefl.Ref{LV: f0}, sefl.C(10)),
			Then: sefl.Forward{Port: 0},
			Else: sefl.If{
				C:    sefl.Lt(sefl.Ref{LV: f0}, sefl.C(100)),
				Then: sefl.Forward{Port: 1},
				Else: sefl.Forward{Port: 2},
			},
		}},
		// Cross-row data flow: the shared continuation reads F1, which each
		// arm wrote differently — rewrites must compose, not snapshot.
		{"rewrite reads branch-written field", sefl.Seq(
			sefl.If{
				C:    sefl.Eq(sefl.Ref{LV: f0}, sefl.C(5)),
				Then: sefl.Assign{LV: f1, E: sefl.C(5)},
				Else: sefl.Assign{LV: f1, E: sefl.C(7)},
			},
			sefl.Assign{LV: f2, E: sefl.Add{A: sefl.Ref{LV: f1}, B: sefl.C(1)}},
			sefl.Constrain{C: sefl.Lt(sefl.Ref{LV: f2}, sefl.C(7))},
			sefl.Forward{Port: 0},
		)},
	}
	for _, tc := range cases {
		net := core.NewNetwork()
		e := net.AddElement("dut", "dut", 1, 3)
		e.SetInCode(0, tc.code)
		sink := net.AddElement("sink", "sink", 1, 0)
		sink.SetInCode(0, sefl.NoOp{})
		for p := 0; p < 3; p++ {
			net.MustLink("dut", p, "sink", 0)
		}
		inj := core.PortRef{Elem: "dut", Port: 0}
		opts := core.Options{MaxHops: 8, Trace: true}

		ref, err := core.Run(net, inj, inject, opts)
		if err != nil {
			t.Fatalf("%s: IR run: %v", tc.name, err)
		}

		reg := obs.NewRegistry()
		sumOpts := opts
		sumOpts.Summaries = true
		sumOpts.Obs = obs.New(reg, nil)
		res, err := core.Run(net, inj, inject, sumOpts)
		if err != nil {
			t.Fatalf("%s: summaries run: %v", tc.name, err)
		}
		if want, got := fingerprint(ref), fingerprint(res); want != got {
			t.Errorf("%s: summaries result differs from IR:\n%s", tc.name, diffHead(want, got))
		}
		// The device under test must have gone through the summary path, or
		// the case pinned nothing.
		if hits := reg.Snapshot().Counters["summary.elem_hits.dut"]; hits < 1 {
			t.Errorf("%s: dut not executed via summary (hits=%d)", tc.name, hits)
		}
	}
}
