package prog

import (
	"strings"
	"testing"

	"symnet/internal/expr"
	"symnet/internal/sefl"
)

func init() {
	sefl.RegisterForBody("prog.test.strip", func(arg string) func(sefl.Meta) sefl.Instr {
		return func(k sefl.Meta) sefl.Instr {
			return sefl.Assign{LV: k, E: sefl.C(0)}
		}
	})
}

// codecProgram exercises every op kind, guard dedup, static folding, and a
// registered For.
func codecProgram() sefl.Instr {
	guard := sefl.Prefix{E: sefl.Ref{LV: sefl.IPDst}, Value: 0x0a000000, Len: 8, Width: 32}
	return sefl.Seq(
		sefl.Allocate{LV: sefl.Meta{Name: "seen", Local: true}, Size: 8},
		sefl.Assign{LV: sefl.Meta{Name: "seen", Local: true}, E: sefl.C(1)},
		sefl.CreateTag{Name: "X", E: sefl.C(400)},
		sefl.DestroyTag{Name: "X"},
		sefl.Constrain{C: guard},
		sefl.Constrain{C: guard}, // dedup: same node must be shared
		sefl.NewFor(`^OPT\d+$`, "prog.test.strip", ""),
		sefl.If{
			C:    sefl.Lt(sefl.Ref{LV: sefl.TcpDst}, sefl.C(1024)),
			Then: sefl.Fork{Ports: []int{0, 1}},
			Else: sefl.Seq(
				sefl.Constrain{C: sefl.Eq(sefl.CW(3, 8), sefl.CW(3, 8))}, // static-folds
				sefl.Forward{Port: 0},
			),
		},
	)
}

func TestProgramCodecRoundTrip(t *testing.T) {
	p := Compile(codecProgram(), "e1", 4, "e1.in[0]")
	w, err := EncodeProgram(p)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	q, err := DecodeProgram(w)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got, want := q.String(), p.String(); got != want {
		t.Fatalf("decoded program dump differs:\n--- original\n%s\n--- decoded\n%s", want, got)
	}
	if q.Conds != p.Conds || q.CondsSeen != p.CondsSeen {
		t.Fatalf("cond counts differ: %d/%d != %d/%d", q.Conds, q.CondsSeen, p.Conds, p.CondsSeen)
	}
}

// TestProgramCodecPreservesCondSharing pins that structurally equal guards,
// hash-consed to one node at compile time, decode back to one shared node
// (sharing carries the single-slot evaluation memo).
func TestProgramCodecPreservesCondSharing(t *testing.T) {
	p := Compile(codecProgram(), "e1", 4, "t")
	var orig []*CCond
	for i := range p.Ops {
		if p.Ops[i].Kind == OpConstrain && !p.Ops[i].C.HasStatic {
			orig = append(orig, p.Ops[i].C)
		}
	}
	if len(orig) < 2 || orig[0] != orig[1] {
		t.Fatalf("test premise: compiled guards should share one node, got %v", orig)
	}
	w, err := EncodeProgram(p)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	q, err := DecodeProgram(w)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	var dec []*CCond
	for i := range q.Ops {
		if q.Ops[i].Kind == OpConstrain && !q.Ops[i].C.HasStatic {
			dec = append(dec, q.Ops[i].C)
		}
	}
	if len(dec) != len(orig) || dec[0] != dec[1] {
		t.Fatal("decoded guards no longer share one node")
	}
	if dec[0].FP != orig[0].FP {
		t.Fatalf("fingerprint changed across codec: %v != %v", dec[0].FP, orig[0].FP)
	}
}

func TestProgramCodecStaticFold(t *testing.T) {
	p := Compile(sefl.Constrain{C: sefl.Eq(sefl.CW(3, 8), sefl.CW(3, 8))}, "e", 0, "t")
	w, err := EncodeProgram(p)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	q, err := DecodeProgram(w)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	c := q.Ops[0].C
	if !c.HasStatic {
		t.Fatal("static fold lost across codec")
	}
	got, err := EvalCond(nil, c)
	if err != nil {
		t.Fatalf("eval static: %v", err)
	}
	if got != expr.Bool(true) {
		t.Fatalf("static value = %v, want true", got)
	}
}

func TestProgramCodecBareClosureForFails(t *testing.T) {
	p := Compile(sefl.For{Pattern: "^m", Body: func(sefl.Meta) sefl.Instr { return sefl.NoOp{} }}, "e", 0, "t")
	_, err := EncodeProgram(p)
	if err == nil || !strings.Contains(err.Error(), "NewFor") {
		t.Fatalf("want bare-closure error, got %v", err)
	}
}

func TestProgramCodecBadForPatternMessageStable(t *testing.T) {
	// A bad pattern compiles to a precomputed failure message; the decoder
	// rebuilds the ForOp through the same constructor, so the message (part
	// of observable path output) must survive byte-identically.
	sefl.RegisterForBody("prog.test.noop", func(string) func(sefl.Meta) sefl.Instr {
		return func(sefl.Meta) sefl.Instr { return sefl.NoOp{} }
	})
	p := Compile(sefl.NewFor("(", "prog.test.noop", ""), "e", 0, "t")
	if p.Ops[0].For.Err == "" {
		t.Fatal("test premise: bad pattern should precompute an error")
	}
	w, err := EncodeProgram(p)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	q, err := DecodeProgram(w)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if q.Ops[0].For.Err != p.Ops[0].For.Err {
		t.Fatalf("bad-pattern message drifted: %q != %q", q.Ops[0].For.Err, p.Ops[0].For.Err)
	}
}
