package prog

import (
	"fmt"
	"time"

	"symnet/internal/expr"
	"symnet/internal/memory"
	"symnet/internal/persist"
	"symnet/internal/sefl"
)

// Compile lowers one element-port SEFL program to a flat IR Program for the
// given element (name and instance scope local metadata and trace lines).
// Compilation never fails: constructs the compiler cannot lower statically
// (unknown instruction types, bad For patterns) become ops that reproduce
// the AST interpreter's runtime failure exactly.
func Compile(code sefl.Instr, elem string, instance int, label string) *Program {
	t0 := time.Now()
	c := &compiler{
		p:     &Program{Elem: elem, Instance: instance, Label: label},
		conds: make(map[expr.Fp][]*CCond),
	}
	c.p.Entry = c.compileSeg([]sefl.Instr{code})
	compileCount.Add(1)
	compileNs.Add(time.Since(t0).Nanoseconds())
	return c.p
}

type compiler struct {
	p     *Program
	conds map[expr.Fp][]*CCond // hash-consing table for guard dedup
}

// compileSeg compiles an instruction sequence into a new segment. Child
// segments (If branches, unspliced blocks) are emitted first, so a
// segment's ops are contiguous in the program's op array.
func (c *compiler) compileSeg(is []sefl.Instr) SegID {
	var buf []Op
	forked := false     // an If/For op was emitted into this segment
	terminated := false // every state reaching this point has terminated
	c.emitList(&buf, is, &forked, &terminated)
	lo := int32(len(c.p.Ops))
	c.p.Ops = append(c.p.Ops, buf...)
	id := SegID(len(c.p.Segs))
	c.p.Segs = append(c.p.Segs, Seg{Lo: lo, Hi: int32(len(c.p.Ops)), Terminates: terminated})
	return id
}

// emitList emits ops for an instruction sequence into buf. Ops after the
// point where every state has terminated are dead code and dropped (the AST
// interpreter's status guard would skip them unexecuted and untraced, so
// dropping is observationally identical).
func (c *compiler) emitList(buf *[]Op, is []sefl.Instr, forked, terminated *bool) {
	for _, ins := range is {
		if *terminated {
			return
		}
		c.emit(buf, ins, forked, terminated)
	}
}

func (c *compiler) emit(buf *[]Op, ins sefl.Instr, forked, terminated *bool) {
	switch v := ins.(type) {
	case sefl.Block:
		// Splice the block's instructions into this segment when that
		// cannot reorder fresh-symbol allocation: with a single live state
		// (no prior fork in this segment) instruction-major and state-major
		// execution coincide, and without Symbolic expressions there is no
		// allocation to reorder. Otherwise the block stays a sub-segment
		// executed per state, exactly like the AST recursion.
		if !*forked || !containsSymbolic(v) {
			c.emitList(buf, v.Is, forked, terminated)
			return
		}
		// Only reached with *forked already set: a spliced fork precedes
		// this block in the segment, so it stays a per-state sub-segment.
		sub := c.compileSeg(v.Is)
		*buf = append(*buf, Op{Kind: OpSub, Sub: sub})
		if c.p.Segs[sub].Terminates {
			*terminated = true
		}

	case sefl.NoOp:
		*buf = append(*buf, Op{Kind: OpNoOp, Ins: ins})

	case sefl.Allocate:
		*buf = append(*buf, Op{Kind: OpAllocate, Ins: ins, LV: c.compileLV(v.LV), Size: allocSize(v.LV, v.Size)})

	case sefl.Deallocate:
		*buf = append(*buf, Op{Kind: OpDeallocate, Ins: ins, LV: c.compileLV(v.LV), Size: allocSize(v.LV, v.Size)})

	case sefl.Assign:
		lv := c.compileLV(v.LV)
		e := c.compileExpr(v.E)
		if lv.IsHdr {
			// The width hint of a header assignment is the declared field
			// size — statically known, so hint-dependent expressions fold
			// here too (a metadata assignment's hint is the runtime width).
			c.foldWithHint(e, lv.Size)
		}
		*buf = append(*buf, Op{Kind: OpAssign, Ins: ins, LV: lv, E: e})

	case sefl.CreateTag:
		e := c.compileExpr(v.E)
		c.foldWithHint(e, 64)
		*buf = append(*buf, Op{
			Kind: OpCreateTag, Ins: ins, Tag: v.Name, E: e,
			Msg: fmt.Sprintf("CreateTag(%q): tag value must be concrete", v.Name),
		})

	case sefl.DestroyTag:
		*buf = append(*buf, Op{Kind: OpDestroyTag, Ins: ins, Tag: v.Name})

	case sefl.Constrain:
		*buf = append(*buf, Op{Kind: OpConstrain, Ins: ins, C: c.compileCond(v.C)})

	case sefl.Fail:
		*buf = append(*buf, Op{Kind: OpFail, Ins: ins, Msg: v.Msg})
		*terminated = true

	case sefl.If:
		cond := c.compileCond(v.C)
		thenSeg := c.compileSeg([]sefl.Instr{v.Then})
		elseSeg := c.compileSeg([]sefl.Instr{v.Else})
		*buf = append(*buf, Op{Kind: OpIf, Ins: ins, C: cond, Then: thenSeg, Else: elseSeg})
		*forked = true
		if c.p.Segs[thenSeg].Terminates && c.p.Segs[elseSeg].Terminates {
			*terminated = true
		}

	case sefl.For:
		*buf = append(*buf, Op{Kind: OpFor, Ins: ins, For: newForOp(v.Pattern, v.Body)})
		*forked = true

	case sefl.Forward:
		*buf = append(*buf, Op{Kind: OpForward, Ins: ins, Port: v.Port})
		*terminated = true

	case sefl.Fork:
		*buf = append(*buf, Op{Kind: OpFork, Ins: ins, Ports: v.Ports})
		*terminated = true

	default:
		*buf = append(*buf, Op{Kind: OpUnknown, Ins: ins, Msg: fmt.Sprintf("unknown instruction %T", ins)})
	}
}

// allocSize applies the AST interpreter's size defaulting: a zero
// Allocate/Deallocate size borrows the header l-value's declared size.
func allocSize(lv sefl.LValue, size int) int {
	if size == 0 {
		if h, ok := lv.(sefl.Hdr); ok {
			size = h.Size
		}
	}
	return size
}

// compileLV pre-resolves an l-value: metadata binds its full key (the
// element instance is a compile input), tag-free header offsets are already
// absolute.
func (c *compiler) compileLV(lv sefl.LValue) LV {
	switch v := lv.(type) {
	case sefl.Hdr:
		return LV{IsHdr: true, Tag: v.Off.Tag, Rel: v.Off.Rel, Size: v.Size}
	case sefl.Meta:
		inst := memory.GlobalScope
		if v.Pinned {
			inst = v.Instance
		} else if v.Local {
			inst = c.p.Instance
		}
		return LV{Key: memory.MetaKey{Name: v.Name, Instance: inst}}
	}
	return LV{Err: fmt.Sprintf("unknown l-value %T", lv)}
}

// compileExpr lowers an expression, folding subtrees whose value is
// independent of the evaluation hint (fixed-width literals and arithmetic
// over them) to their exact runtime value.
func (c *compiler) compileExpr(e sefl.Expr) *CExpr {
	switch v := e.(type) {
	case sefl.Num:
		ce := &CExpr{Kind: ENum, V: v.V, W: v.W}
		if v.W != 0 {
			l := expr.Const(v.V, v.W)
			ce.Folded = &l
		}
		return ce
	case sefl.Symbolic:
		return &CExpr{Kind: ESym, W: v.W, Name: v.Name}
	case sefl.Ref:
		return &CExpr{Kind: ERef, LV: c.compileLV(v.LV)}
	case sefl.TagVal:
		return &CExpr{Kind: ETagVal, Tag: v.Tag, Rel: v.Rel}
	case sefl.Add:
		return c.compileArith(v.A, v.B, false)
	case sefl.Sub:
		return c.compileArith(v.A, v.B, true)
	}
	return &CExpr{Err: fmt.Sprintf("unknown expression %T", e)}
}

func (c *compiler) compileArith(a, b sefl.Expr, minus bool) *CExpr {
	ce := &CExpr{Kind: EArith, A: c.compileExpr(a), B: c.compileExpr(b), Minus: minus}
	// Fold constant arithmetic: when the left operand folded (so its width
	// is fixed), the right operand's hint is that width, and a literal or
	// folded right operand makes the whole node hint-independent. The
	// computation below is evalArith's constant/constant case verbatim.
	la := ce.A.Folded
	if la == nil {
		return ce
	}
	var lb expr.Lin
	switch {
	case ce.B.Folded != nil:
		lb = *ce.B.Folded
	case ce.B.Kind == ENum:
		lb = expr.Const(ce.B.V, la.Width)
	default:
		return ce
	}
	va, aOK := la.ConstVal()
	vb, bOK := lb.ConstVal()
	if !aOK || !bOK {
		return ce
	}
	w := la.Width
	if lb.Width > w {
		w = lb.Width
	}
	var l expr.Lin
	if minus {
		l = expr.Const(va-vb, w)
	} else {
		l = expr.Const(va+vb, w)
	}
	ce.Folded = &l
	return ce
}

// foldWithHint folds a hint-dependent static expression once the context's
// width hint is statically known (header assignments, tag creation). Only
// the root node is annotated: it is private to its op, while subtrees could
// in principle be shared.
func (c *compiler) foldWithHint(e *CExpr, hint int) {
	if e.Folded != nil || !exprStatic(e) {
		return
	}
	if l, err := EvalExpr(nil, e, hint); err == nil {
		e.Folded = &l
	}
}

// exprStatic reports whether evaluating e touches neither the packet nor
// the symbol allocator, i.e. the evaluation is a pure function of the hint.
func exprStatic(e *CExpr) bool {
	switch e.Kind {
	case ENum:
		return e.Err == ""
	case EArith:
		return e.Err == "" && exprStatic(e.A) && exprStatic(e.B)
	}
	return false
}

// compileCond lowers a condition bottom-up, hash-consing structurally equal
// nodes (guard dedup) and precomputing the value — or the exact evaluation
// error — of nodes whose evaluation is static.
func (c *compiler) compileCond(sc sefl.Cond) *CCond {
	var cc *CCond
	switch v := sc.(type) {
	case sefl.CBool:
		cc = &CCond{Kind: CBool, B: bool(v)}
	case sefl.Cmp:
		cc = &CCond{Kind: CCmp, Op: v.Op, L: c.compileExpr(v.L), R: c.compileExpr(v.R)}
	case sefl.Prefix:
		w := v.Width
		if w == 0 {
			w = 32
		}
		cc = &CCond{Kind: CPrefix, L: c.compileExpr(v.E), Val: v.Value, PLen: v.Len, PW: w}
	case sefl.Masked:
		cc = &CCond{Kind: CMasked, L: c.compileExpr(v.E), Mask: v.Mask, Val: v.Val}
	case sefl.MetaPresent:
		lv := c.compileLV(v.M)
		cc = &CCond{Kind: CMetaPresent, Key: lv.Key}
	case sefl.CAnd:
		cs := make([]*CCond, len(v.Cs))
		for i, sub := range v.Cs {
			cs[i] = c.compileCond(sub)
		}
		cc = &CCond{Kind: CAnd, Cs: cs}
	case sefl.COr:
		cs := make([]*CCond, len(v.Cs))
		for i, sub := range v.Cs {
			cs[i] = c.compileCond(sub)
		}
		cc = &CCond{Kind: COr, Cs: cs}
	case sefl.CNot:
		cc = &CCond{Kind: CNot, C: c.compileCond(v.C)}
	default:
		// Unknown condition types fail at evaluation like the AST
		// interpreter's default case.
		cc = &CCond{
			Kind: CBool, HasStatic: true,
			StaticErr: fmt.Sprintf("unknown condition %T", sc),
		}
		cc.FP = fpString(cc.StaticErr)
		return cc
	}
	cc.FP = fpCond(cc)
	c.p.CondsSeen++
	// Egress-shaped disjunctions lower to interval tables before dedup, so
	// structurally equal guards compare with matching kinds.
	lowerIntervalTable(cc)
	if cand := findCond(c.conds, cc); cand != nil {
		return cand
	}
	finishCond(cc)
	c.conds[cc.FP] = append(c.conds[cc.FP], cc)
	c.p.Conds++
	return cc
}

// findCond looks cc up in a hash-consing table (nil on miss).
func findCond(conds map[expr.Fp][]*CCond, cc *CCond) *CCond {
	for _, cand := range conds[cc.FP] {
		if equalCCond(cand, cc) {
			return cand
		}
	}
	return nil
}

// finishCond computes a node's derived state — static fold, structural
// size, memo gating — shared between the compiler and the wire decoder's
// reconstruction of lowered-guard children.
func finishCond(cc *CCond) {
	if !cc.HasStatic && condStatic(cc) {
		cond, err := evalCondDynamic(nil, cc)
		cc.HasStatic = true
		if err != nil {
			cc.StaticErr = err.Error()
		} else {
			cc.Static = cond
		}
	}
	cc.Words, cc.HasSym = condSize(cc)
	cc.Memoizable = !cc.HasStatic && !cc.HasSym && cc.Words >= memoMinWords
	if cc.Memoizable {
		seen := make(map[CondInput]bool)
		collectInputs(cc, seen, &cc.Inputs)
	}
}

// memoMinWords gates the evaluation memo: small guards rebuild faster than
// they hash, large ones (table-wide disjunctions) amortize enormously.
const memoMinWords = 32

// condSize returns the structural node count and whether the condition can
// allocate fresh symbols.
func condSize(cc *CCond) (int, bool) {
	words, sym := 1, false
	switch cc.Kind {
	case CCmp:
		w, s := exprSize(cc.L)
		words += w
		sym = sym || s
		w, s = exprSize(cc.R)
		words += w
		sym = sym || s
	case CPrefix, CMasked:
		w, s := exprSize(cc.L)
		words += w
		sym = sym || s
	case CAnd, COr, CIntervalTable:
		for _, sub := range cc.Cs {
			words += sub.Words
			sym = sym || sub.HasSym
		}
	case CNot:
		words += cc.C.Words
		sym = cc.C.HasSym
	}
	return words, sym
}

func exprSize(e *CExpr) (int, bool) {
	switch e.Kind {
	case ESym:
		return 1, true
	case EArith:
		wa, sa := exprSize(e.A)
		wb, sb := exprSize(e.B)
		return 1 + wa + wb, sa || sb
	}
	return 1, false
}

// collectInputs walks a memoizable condition in evaluation order and
// records each distinct dynamic read once. Static subtrees read nothing.
func collectInputs(cc *CCond, seen map[CondInput]bool, out *[]CondInput) {
	if cc.HasStatic {
		return
	}
	add := func(in CondInput) {
		if !seen[in] {
			seen[in] = true
			*out = append(*out, in)
		}
	}
	switch cc.Kind {
	case CCmp:
		collectExprInputs(cc.L, seen, out)
		collectExprInputs(cc.R, seen, out)
	case CPrefix, CMasked:
		collectExprInputs(cc.L, seen, out)
	case CMetaPresent:
		add(CondInput{Kind: InMetaPresent, Key: cc.Key})
	case CAnd, COr, CIntervalTable:
		for _, sub := range cc.Cs {
			collectInputs(sub, seen, out)
		}
	case CNot:
		collectInputs(cc.C, seen, out)
	}
}

func collectExprInputs(e *CExpr, seen map[CondInput]bool, out *[]CondInput) {
	if e.Folded != nil {
		return
	}
	switch e.Kind {
	case ERef:
		in := CondInput{Kind: InRef, LV: e.LV}
		if !seen[in] {
			seen[in] = true
			*out = append(*out, in)
		}
	case ETagVal:
		in := CondInput{Kind: InTag, Tag: e.Tag}
		if !seen[in] {
			seen[in] = true
			*out = append(*out, in)
		}
	case EArith:
		collectExprInputs(e.A, seen, out)
		collectExprInputs(e.B, seen, out)
	}
}

// condStatic reports whether evaluating the condition is a pure function:
// no packet reads, no symbol allocation. Children are already compiled, so
// composite nodes just consult their children's HasStatic.
func condStatic(cc *CCond) bool {
	switch cc.Kind {
	case CBool:
		return true
	case CCmp:
		return exprStatic(cc.L) && exprStatic(cc.R)
	case CPrefix, CMasked:
		return exprStatic(cc.L)
	case CMetaPresent:
		return false
	case CAnd, COr, CIntervalTable:
		for _, sub := range cc.Cs {
			if !sub.HasStatic {
				return false
			}
		}
		return true
	case CNot:
		return cc.C.HasStatic
	}
	return false
}

// --- Structural fingerprints (guard dedup) ---

// The dedup table is keyed by 128-bit structural fingerprints built with
// the expr package's chained-fingerprint combinator, with a structural
// equality check on collisions (equality is cheap: children are already
// hash-consed, so deep comparison bottoms out in pointer equality).

func fpWord(x uint64) expr.Fp {
	return expr.Fp{Hi: x, Lo: x * 0x9e3779b97f4a7c15}
}

func fpString(s string) expr.Fp {
	h := persist.HashString(s)
	return expr.Fp{Hi: h, Lo: persist.Mix64(h)}
}

func fpExpr(e *CExpr) expr.Fp {
	f := fpWord(uint64(e.Kind) + 0x11)
	switch e.Kind {
	case ENum:
		f = f.Chain(fpWord(e.V)).Chain(fpWord(uint64(e.W)))
	case ESym:
		f = f.Chain(fpWord(uint64(e.W))).Chain(fpString(e.Name))
	case ERef:
		f = f.Chain(fpLV(e.LV))
	case ETagVal:
		f = f.Chain(fpString(e.Tag)).Chain(fpWord(uint64(e.Rel)))
	case EArith:
		if e.Minus {
			f = f.Chain(fpWord(1))
		}
		f = f.Chain(fpExpr(e.A)).Chain(fpExpr(e.B))
	}
	if e.Err != "" {
		f = f.Chain(fpString(e.Err))
	}
	return f
}

func fpLV(lv LV) expr.Fp {
	f := fpWord(uint64(lv.Rel))
	if lv.IsHdr {
		f = f.Chain(fpWord(uint64(lv.Size) + 1)).Chain(fpString(lv.Tag))
	} else {
		f = f.Chain(fpString(lv.Key.Name)).Chain(fpWord(uint64(int64(lv.Key.Instance))))
	}
	if lv.Err != "" {
		f = f.Chain(fpString(lv.Err))
	}
	return f
}

func fpCond(cc *CCond) expr.Fp {
	kind := cc.Kind
	if kind == CIntervalTable {
		// Lowering is a representation change: a lowered guard keeps the
		// fingerprint of the Or-tree it was built from, so guards dedup and
		// memoize identically whichever form a node is in.
		kind = COr
	}
	f := fpWord(uint64(kind) + 0x29)
	switch cc.Kind {
	case CBool:
		if cc.B {
			f = f.Chain(fpWord(1))
		}
	case CCmp:
		f = f.Chain(fpWord(uint64(cc.Op))).Chain(fpExpr(cc.L)).Chain(fpExpr(cc.R))
	case CPrefix:
		f = f.Chain(fpExpr(cc.L)).Chain(fpWord(cc.Val)).
			Chain(fpWord(uint64(cc.PLen))).Chain(fpWord(uint64(cc.PW)))
	case CMasked:
		f = f.Chain(fpExpr(cc.L)).Chain(fpWord(cc.Mask)).Chain(fpWord(cc.Val))
	case CMetaPresent:
		f = f.Chain(fpString(cc.Key.Name)).Chain(fpWord(uint64(int64(cc.Key.Instance))))
	case CAnd, COr, CIntervalTable:
		f = f.Chain(fpWord(uint64(len(cc.Cs))))
		for _, sub := range cc.Cs {
			f = f.Chain(sub.FP)
		}
	case CNot:
		f = f.Chain(cc.C.FP)
	}
	return f
}

func equalCCond(a, b *CCond) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case CBool:
		return a.B == b.B && a.StaticErr == b.StaticErr
	case CCmp:
		return a.Op == b.Op && equalCExpr(a.L, b.L) && equalCExpr(a.R, b.R)
	case CPrefix:
		return a.Val == b.Val && a.PLen == b.PLen && a.PW == b.PW && equalCExpr(a.L, b.L)
	case CMasked:
		return a.Mask == b.Mask && a.Val == b.Val && equalCExpr(a.L, b.L)
	case CMetaPresent:
		return a.Key == b.Key
	case CAnd, COr, CIntervalTable:
		if len(a.Cs) != len(b.Cs) {
			return false
		}
		for i := range a.Cs {
			// Children are hash-consed: identity is equality.
			if a.Cs[i] != b.Cs[i] {
				return false
			}
		}
		return true
	case CNot:
		return a.C == b.C
	}
	return false
}

func equalCExpr(a, b *CExpr) bool {
	if a.Kind != b.Kind || a.Err != b.Err {
		return false
	}
	switch a.Kind {
	case ENum:
		return a.V == b.V && a.W == b.W
	case ESym:
		return a.W == b.W && a.Name == b.Name
	case ERef:
		return a.LV == b.LV
	case ETagVal:
		return a.Tag == b.Tag && a.Rel == b.Rel
	case EArith:
		return a.Minus == b.Minus && equalCExpr(a.A, b.A) && equalCExpr(a.B, b.B)
	}
	return true
}

// --- Splice analysis ---

// containsSymbolic reports whether executing ins can allocate fresh
// symbols. For bodies are unknown until runtime, so For is conservatively
// symbolic.
func containsSymbolic(ins sefl.Instr) bool {
	switch v := ins.(type) {
	case sefl.Block:
		for _, sub := range v.Is {
			if containsSymbolic(sub) {
				return true
			}
		}
	case sefl.Assign:
		return exprHasSymbolic(v.E)
	case sefl.CreateTag:
		return exprHasSymbolic(v.E)
	case sefl.Constrain:
		return condHasSymbolic(v.C)
	case sefl.If:
		return condHasSymbolic(v.C) || containsSymbolic(v.Then) || containsSymbolic(v.Else)
	case sefl.For:
		return true
	}
	return false
}

func exprHasSymbolic(e sefl.Expr) bool {
	switch v := e.(type) {
	case sefl.Symbolic:
		return true
	case sefl.Add:
		return exprHasSymbolic(v.A) || exprHasSymbolic(v.B)
	case sefl.Sub:
		return exprHasSymbolic(v.A) || exprHasSymbolic(v.B)
	}
	return false
}

func condHasSymbolic(c sefl.Cond) bool {
	switch v := c.(type) {
	case sefl.Cmp:
		return exprHasSymbolic(v.L) || exprHasSymbolic(v.R)
	case sefl.Prefix:
		return exprHasSymbolic(v.E)
	case sefl.Masked:
		return exprHasSymbolic(v.E)
	case sefl.CAnd:
		for _, sub := range v.Cs {
			if condHasSymbolic(sub) {
				return true
			}
		}
	case sefl.COr:
		for _, sub := range v.Cs {
			if condHasSymbolic(sub) {
				return true
			}
		}
	case sefl.CNot:
		return condHasSymbolic(v.C)
	}
	return false
}
