package prog

// In-place guard patching for rule churn.
//
// A compiled program is normally immutable; an incremental verification
// service is the sanctioned exception. When one forwarding rule changes, the
// only part of an egress-style port program that changes is its lowered
// guard's interval table — the Fork list, segments, and every other op are
// untouched. PatchGuard swaps the table of the affected guard node in place
// (between runs: callers must guarantee no exploration is executing the
// program) and recomputes everything the compiler derives from it, so the
// patched program is indistinguishable from a fresh compile of the updated
// guard: same table fingerprint (the caller built the new table with
// expr.SpanTable patching, whose canonical form is construction-order
// independent), same rebuilt fallback children, same memo gating and inputs,
// and the same lazily-rendered source instruction for traces and failure
// messages.

import (
	"symnet/internal/expr"
	"symnet/internal/sefl"
	"symnet/internal/solver"
)

// PatchSpec describes one guard-table replacement inside a compiled program.
type PatchSpec struct {
	// OldFp is the fingerprint of the span table being replaced; every
	// non-grouped lowered guard currently carrying it is patched.
	OldFp expr.Fp
	// Rows is the guard's new row list, in the order a fresh model build
	// would emit (table order for MACs, CompileLPM order for routes) — the
	// rebuilt fallback children must match a from-scratch compile exactly.
	Rows []ITRow
	// Table is the new merged span table, typically produced by patching the
	// old one (expr.SpanTable.PatchWindow) rather than re-merging all rows.
	Table *expr.SpanTable
	// Ins is the rebuilt source instruction (e.g. models.SwitchEgressGuard).
	// Trace lines and constraint-failure messages render the op's original
	// instruction lazily, so every OpConstrain whose guard is patched must
	// have its Ins replaced or resident traces would show the stale rules.
	Ins sefl.Instr
}

// forEachCond visits every distinct condition node reachable from the
// program's ops (conditions are hash-consed, so shared nodes visit once).
func forEachCond(p *Program, fn func(*CCond)) {
	seen := make(map[*CCond]bool)
	var walk func(cc *CCond)
	walk = func(cc *CCond) {
		if cc == nil || seen[cc] {
			return
		}
		seen[cc] = true
		fn(cc)
		for _, sub := range cc.Cs {
			walk(sub)
		}
		walk(cc.C)
	}
	for i := range p.Ops {
		walk(p.Ops[i].C)
	}
}

// GuardTables returns the payload of every lowered guard node in the
// program, deduplicated, in op order. An incremental service uses it to map
// each (element, port) program to the table fingerprints it depends on.
func GuardTables(p *Program) []*ITable {
	var out []*ITable
	forEachCond(p, func(cc *CCond) {
		if cc.Kind == CIntervalTable && cc.IT != nil {
			out = append(out, cc.IT)
		}
	})
	return out
}

// RowSolutionSet returns one guard row's solution set over a w-bit field —
// the same set construction lowering merges into the span table. Exported so
// delta application can compute a changed rule's replacement spans without
// re-merging the whole table.
func RowSolutionSet(r ITRow, w int) *solver.IntervalSet { return itRowSet(r, w) }

// BuildGuardTable merges a full row list into its span table (the from-
// scratch construction lowering performs). Incremental callers use it only
// to cross-check or to rebuild after non-local changes; the per-delta path
// goes through expr.SpanTable.PatchWindow.
func BuildGuardTable(rows []ITRow, w int) *expr.SpanTable {
	it := &ITable{W: w, Rows: rows}
	buildITable(it)
	return it.Table
}

// PatchGuard applies spec to p in place, returning the number of guard nodes
// patched (0 when no non-grouped lowered guard carries spec.OldFp — grouped
// two-field tables are not patchable and must be recompiled). The program
// must not be executing concurrently. For each matched node it installs the
// new rows and table, rebuilds the fallback Or-tree children with the same
// hash-consing construction the compiler and wire decoder use, recomputes
// the node fingerprint and derived state (static fold, size, memo gating,
// input set), clears the evaluation memo, and swaps the rendered source
// instruction on every OpConstrain guarded by the node.
func PatchGuard(p *Program, spec PatchSpec) int {
	patched := make(map[*CCond]bool)
	forEachCond(p, func(cc *CCond) {
		if cc.Kind != CIntervalTable || cc.IT == nil || cc.IT.Grouped {
			return
		}
		if cc.IT.Table == nil || cc.IT.Table.Fp() != spec.OldFp {
			return
		}
		it := &ITable{F: cc.IT.F, W: cc.IT.W, Rows: spec.Rows, Table: spec.Table}
		cc.IT = it
		b := &itBuilder{conds: make(map[expr.Fp][]*CCond)}
		cc.Cs = b.children(it)
		cc.FP = fpCond(cc)
		cc.Inputs = nil
		cc.memo.Store(nil)
		finishCond(cc)
		patched[cc] = true
	})
	if len(patched) == 0 {
		return 0
	}
	if spec.Ins != nil {
		for i := range p.Ops {
			op := &p.Ops[i]
			if op.Kind == OpConstrain && patched[op.C] {
				op.Ins = spec.Ins
			}
		}
	}
	return len(patched)
}
