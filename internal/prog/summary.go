// Per-element summaries: the compiled IR of an element-port program is
// pre-walked once into a decision DAG of guarded update rows — every
// root-to-leaf path is one row: the conjunction of branch guards along the
// way, the ordered field rewrites (the linear ops) it performs, and the
// terminator (successor ports, failure, or plain delivery). The engine then
// applies the DAG per visit instead of dispatching the IR segment machinery:
// one tight loop over pre-resolved steps, with the per-visit allocations the
// IR path pays (successor-port slices, constraint-failure renders, trace
// lines) hoisted into the summary and shared by every visit. This
// generalizes the expr.SpanTable lowering of PR 5 — a span table is the
// special case of a guard row set with no rewrites — to full transfer
// functions, the compositional-summary construction the symbolic-execution
// literature prescribes for path-explosion-by-revisit.
//
// Summaries are observationally identical to IR execution by construction:
// every step executes through the same evaluators (EvalExpr/EvalCond), the
// same solver calls in the same per-path order, and renders the same
// strings. The one discipline the DAG cannot reproduce is the IR's
// instruction-major interleaving of fresh-symbol mints across sibling
// states, so Summarize refuses (verdict "unsummarizable") any program where
// that interleaving is observable — a fresh-symbol mint downstream of a
// branch point — and any program whose iteration space is data-dependent (a
// For loop, whose body set depends on runtime metadata). Unsummarizable
// programs fall back to the IR path, preserving exact semantics; the
// differential property tests pin byte-identity across both verdicts.
package prog

import (
	"fmt"
	"sync/atomic"

	"symnet/internal/sefl"
)

// MaxSummaryNodes bounds the decision DAG. Continuations are shared across
// branches (memoized by program counter and continuation stack), so real
// models stay tiny; the cap is a backstop against pathological nesting where
// distinct continuation stacks defeat sharing. Programs over the budget get
// the unsummarizable verdict and run on the IR path.
const MaxSummaryNodes = 4096

// TermKind is how a SumNode ends.
type TermKind uint8

const (
	// TermEnd finishes the row: the state leaves with whatever the steps
	// established (output ports, failure, or plain delivery).
	TermEnd TermKind = iota
	// TermJump continues at Next — the join point where branch rows share
	// their common continuation.
	TermJump
	// TermBranch forks on the guard of an OpIf: the clone takes C into Then,
	// the original takes ¬C into Else, infeasible successors are pruned —
	// byte-for-byte the IR's OpIf discipline.
	TermBranch
)

// SumStep is one pre-resolved linear operation of a summary row. Op points
// into the summarized program (summaries never copy IR); OpIdx is its index,
// which is what crosses the wire. The remaining fields hoist per-visit work
// out of the apply loop: Fwd is the successor-port slice Forward/Fork would
// otherwise allocate per visit (states only ever read it — see State.clone),
// and the trace/fail renders are computed once and shared by every visit,
// where the IR path re-renders them per failing state (the dominant cost of
// egress-guard elements, whose failure message prints the whole table).
type SumStep struct {
	Op    *Op
	OpIdx int32
	// Fwd is the shared successor-port slice of an OpForward/OpFork step
	// (nil for other kinds, and for the degenerate empty Fork, which fails).
	Fwd []int

	trace atomic.Pointer[string]
	fail  atomic.Pointer[string]
}

// TraceLine returns the step's trace line, rendering it on first use. The
// render is a pure function of the instruction, so the racing-store is
// benign: every winner writes the same bytes.
func (s *SumStep) TraceLine(elem string) string {
	if p := s.trace.Load(); p != nil {
		return *p
	}
	line := fmt.Sprintf("%s: %s", elem, s.Op.Ins)
	s.trace.Store(&line)
	return line
}

// ConstrainFailMsg returns the failure message of an OpConstrain step,
// rendering it on first use. The IR path renders this per failing visit —
// for table-wide egress guards that is the whole forwarding table per
// visit — so the once-per-step render is the summary layer's headline win.
func (s *SumStep) ConstrainFailMsg() string {
	if p := s.fail.Load(); p != nil {
		return *p
	}
	msg := fmt.Sprintf("constraint unsatisfiable: %s", s.Op.Ins.(sefl.Constrain).C)
	s.fail.Store(&msg)
	return msg
}

// SumNode is one node of the decision DAG: a run of linear steps followed by
// a terminator. Nodes are immutable after construction and shared read-only
// across workers, like the programs they summarize.
type SumNode struct {
	Steps []*SumStep
	Term  TermKind

	// TermBranch: the OpIf supplying guard and trace line.
	BrOp    *Op
	BrIdx   int32
	Then    *SumNode
	Else    *SumNode
	brTrace atomic.Pointer[string]

	// TermJump: the shared continuation.
	Next *SumNode
}

// BranchTrace returns the branch's trace line, rendered once and shared.
func (n *SumNode) BranchTrace(elem string) string {
	if p := n.brTrace.Load(); p != nil {
		return *p
	}
	line := fmt.Sprintf("%s: %s", elem, n.BrOp.Ins)
	n.brTrace.Store(&line)
	return line
}

// Summary is the compiled transfer function of one element-port program.
type Summary struct {
	Prog *Program
	Root *SumNode
	// Nodes and Steps size the DAG; Rows counts the guarded update rows
	// (root-to-leaf paths — the span-table generalization's row count).
	Nodes int
	Steps int
	Rows  int64
}

// Summarize pre-walks a compiled program into its summary. It returns
// (nil, reason) when the program is unsummarizable: a For loop (the body
// set depends on runtime metadata, so rows cannot be pre-expanded), a
// fresh-symbol mint downstream of a branch point (the IR mints
// instruction-major across sibling states; a row replay would reorder
// symbol IDs), or a DAG over the node budget.
func Summarize(p *Program) (*Summary, string) {
	b := &sumBuilder{
		p:       p,
		memo:    make(map[sumKey]*SumNode),
		frames:  make(map[sumKey]*sumFrame),
		segMint: make(map[SegID]bool),
	}
	b.buildSuffMints()
	root := b.node(p.Entry, p.Seg(p.Entry).Lo, nil)
	if b.reason != "" {
		return nil, b.reason
	}
	s := &Summary{Prog: p, Root: root, Nodes: b.nodes, Steps: b.steps}
	s.Rows = countRows(root, make(map[*SumNode]int64))
	return s, ""
}

// countRows counts root-to-leaf paths, memoized over the shared DAG.
func countRows(n *SumNode, memo map[*SumNode]int64) int64 {
	if n == nil {
		return 0
	}
	if v, ok := memo[n]; ok {
		return v
	}
	var v int64
	switch n.Term {
	case TermEnd:
		v = 1
	case TermJump:
		v = countRows(n.Next, memo)
	case TermBranch:
		v = countRows(n.Then, memo) + countRows(n.Else, memo)
	}
	memo[n] = v
	return v
}

// sumFrame is one continuation-stack frame of the pre-walk: execution
// resumes at (seg, idx) when the nested segment below it finishes. Frames
// are hash-consed (same resume point + same tail = same frame), which is
// what lets the node memo share join points by pointer identity. mints
// caches whether anything at or after the resume point can mint a fresh
// symbol.
type sumFrame struct {
	seg   SegID
	idx   int32
	next  *sumFrame
	mints bool
}

// sumKey identifies a walk position: program counter plus continuation.
type sumKey struct {
	seg   SegID
	idx   int32
	stack *sumFrame
}

type sumBuilder struct {
	p      *Program
	memo   map[sumKey]*SumNode
	frames map[sumKey]*sumFrame
	// suffMint[i] reports whether any op at or after index i within its own
	// segment can mint a fresh symbol; segMint memoizes whole segments.
	suffMint []bool
	segMint  map[SegID]bool
	nodes    int
	steps    int
	reason   string
}

// buildSuffMints computes per-op suffix mint flags segment by segment.
// Minting happens only through evaluation (ESym expressions, conditions
// with HasSym); segments referenced by If/Sub ops contribute transitively.
func (b *sumBuilder) buildSuffMints() {
	b.suffMint = make([]bool, len(b.p.Ops))
	// Process segments so that referenced segments are computed on demand
	// through opMints -> segMints recursion (the segment graph is a DAG).
	for id := range b.p.Segs {
		b.fillSeg(SegID(id))
	}
}

func (b *sumBuilder) fillSeg(id SegID) {
	seg := b.p.Seg(id)
	mint := false
	for i := seg.Hi - 1; i >= seg.Lo; i-- {
		if b.opMints(&b.p.Ops[i]) {
			mint = true
		}
		b.suffMint[i] = mint
	}
}

// segMints reports whether any op of the segment can mint, memoized.
func (b *sumBuilder) segMints(id SegID) bool {
	if v, ok := b.segMint[id]; ok {
		return v
	}
	// Pre-store false to terminate on (impossible) cycles, then compute.
	b.segMint[id] = false
	seg := b.p.Seg(id)
	mint := false
	for i := seg.Lo; i < seg.Hi; i++ {
		if b.opMints(&b.p.Ops[i]) {
			mint = true
			break
		}
	}
	b.segMint[id] = mint
	return mint
}

// opMints reports whether executing the op can allocate a fresh symbol.
func (b *sumBuilder) opMints(op *Op) bool {
	switch op.Kind {
	case OpAssign, OpCreateTag:
		return exprMints(op.E)
	case OpConstrain:
		return condMints(op.C)
	case OpIf:
		return condMints(op.C) || b.segMints(op.Then) || b.segMints(op.Else)
	case OpSub:
		return b.segMints(op.Sub)
	case OpFor:
		// Bodies are unknown until runtime; irrelevant in practice, since
		// any For is unsummarizable on its own.
		return true
	}
	return false
}

// exprMints reports whether evaluating the expression can mint. Folded
// nodes replay their compile-time value and never evaluate children.
func exprMints(e *CExpr) bool {
	if e == nil || e.Folded != nil {
		return false
	}
	switch e.Kind {
	case ESym:
		return true
	case EArith:
		return exprMints(e.A) || exprMints(e.B)
	}
	return false
}

// condMints reports whether evaluating the condition can mint. Static
// conditions replay their compile-time value; HasSym marks fresh-symbol
// nodes anywhere below (computed by the compiler).
func condMints(c *CCond) bool {
	return c != nil && !c.HasStatic && c.HasSym
}

// push returns the hash-consed continuation frame resuming at (seg, idx).
func (b *sumBuilder) push(seg SegID, idx int32, next *sumFrame) *sumFrame {
	key := sumKey{seg: seg, idx: idx, stack: next}
	if f, ok := b.frames[key]; ok {
		return f
	}
	f := &sumFrame{seg: seg, idx: idx, next: next}
	f.mints = b.suffAt(seg, idx) || (next != nil && next.mints)
	b.frames[key] = f
	return f
}

// suffAt reports whether anything at or after (seg, idx) in that segment
// can mint.
func (b *sumBuilder) suffAt(seg SegID, idx int32) bool {
	if idx >= b.p.Seg(seg).Hi {
		return false
	}
	return b.suffMint[idx]
}

// node walks the program from (seg, idx) under the given continuation and
// returns the summary node covering it, memoized so join points (the code
// after an If, shared by both branches) build once and are shared.
func (b *sumBuilder) node(seg SegID, idx int32, stack *sumFrame) *SumNode {
	if b.reason != "" {
		return nil
	}
	key := sumKey{seg: seg, idx: idx, stack: stack}
	if n, ok := b.memo[key]; ok {
		return n
	}
	if b.nodes >= MaxSummaryNodes {
		b.reason = fmt.Sprintf("decision DAG exceeds %d nodes", MaxSummaryNodes)
		return nil
	}
	b.nodes++
	n := &SumNode{}
	b.memo[key] = n
	for {
		if idx >= b.p.Seg(seg).Hi {
			if stack == nil {
				n.Term = TermEnd
				return n
			}
			n.Term = TermJump
			n.Next = b.node(stack.seg, stack.idx, stack.next)
			return n
		}
		op := &b.p.Ops[idx]
		switch op.Kind {
		case OpFor:
			b.reason = "For loop with a data-dependent iteration space"
			return nil
		case OpSub:
			n.Term = TermJump
			n.Next = b.node(op.Sub, b.p.Seg(op.Sub).Lo, b.push(seg, idx+1, stack))
			return n
		case OpIf:
			if b.suffAt(seg, idx+1) || (stack != nil && stack.mints) {
				b.reason = "fresh-symbol allocation downstream of a branch point"
				return nil
			}
			cont := b.push(seg, idx+1, stack)
			n.Term = TermBranch
			n.BrOp = op
			n.BrIdx = idx
			n.Then = b.node(op.Then, b.p.Seg(op.Then).Lo, cont)
			n.Else = b.node(op.Else, b.p.Seg(op.Else).Lo, cont)
			return n
		default:
			n.Steps = append(n.Steps, newSumStep(op, idx))
			b.steps++
			idx++
		}
	}
}

// newSumStep builds one step, precomputing the shared successor-port slice.
// The builder and the wire decoder share it so step payloads cannot drift.
func newSumStep(op *Op, idx int32) *SumStep {
	s := &SumStep{Op: op, OpIdx: idx}
	switch op.Kind {
	case OpForward:
		s.Fwd = []int{op.Port}
	case OpFork:
		if len(op.Ports) > 0 {
			s.Fwd = append([]int(nil), op.Ports...)
		}
	}
	return s
}
