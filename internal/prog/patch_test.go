package prog

import (
	"fmt"
	"testing"

	"symnet/internal/expr"
	"symnet/internal/sefl"
	"symnet/internal/solver"
)

func patchMACGuard(macs []uint64) sefl.Instr {
	ref := sefl.Ref{LV: sefl.EtherDst}
	cs := make([]sefl.Cond, len(macs))
	for i, m := range macs {
		cs[i] = sefl.Eq(ref, sefl.CW(m, sefl.MACWidth))
	}
	return sefl.Constrain{C: sefl.OrC(cs...)}
}

type patchPrefixRow struct {
	v    uint64
	len  int
	excl []ITExcl
}

func patchPrefixGuard(rows []patchPrefixRow) sefl.Instr {
	dst := sefl.Ref{LV: sefl.IPDst}
	cs := make([]sefl.Cond, len(rows))
	for i, r := range rows {
		match := sefl.Cond(sefl.Prefix{E: dst, Value: r.v, Len: r.len})
		if len(r.excl) > 0 {
			conj := []sefl.Cond{match}
			for _, e := range r.excl {
				conj = append(conj, sefl.NotC(sefl.Prefix{E: dst, Value: e.V, Len: e.Len}))
			}
			match = sefl.AndC(conj...)
		}
		cs[i] = match
	}
	return sefl.Constrain{C: sefl.OrC(cs...)}
}

func guardNode(t *testing.T, p *Program) *CCond {
	t.Helper()
	var node *CCond
	forEachCond(p, func(cc *CCond) {
		if cc.Kind == CIntervalTable {
			node = cc
		}
	})
	if node == nil {
		t.Fatal("no lowered guard in program")
	}
	return node
}

func constrainIns(p *Program) sefl.Instr {
	for _, op := range p.Ops {
		if op.Kind == OpConstrain {
			return op.Ins
		}
	}
	return nil
}

// deepEqualCond is structural equality across two programs' hash-consing
// domains (equalCCond compares children by pointer, which only works within
// one compile). Node fingerprints cover the leaf expressions.
func deepEqualCond(a, b *CCond) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.FP != b.FP || a.HasStatic != b.HasStatic ||
		a.StaticErr != b.StaticErr || a.Words != b.Words || a.HasSym != b.HasSym ||
		a.Memoizable != b.Memoizable || len(a.Inputs) != len(b.Inputs) {
		return false
	}
	if a.Op != b.Op || a.Val != b.Val || a.Mask != b.Mask ||
		a.PLen != b.PLen || a.PW != b.PW || a.B != b.B || a.Key != b.Key {
		return false
	}
	if len(a.Cs) != len(b.Cs) {
		return false
	}
	for i := range a.Cs {
		if !deepEqualCond(a.Cs[i], b.Cs[i]) {
			return false
		}
	}
	return deepEqualCond(a.C, b.C)
}

// requireSameAsFresh pins the core patching contract: after PatchGuard the
// program's guard node must be indistinguishable from a fresh compile of the
// updated guard — structure, fingerprints, memo state, and the rendered
// source instruction.
func requireSameAsFresh(t *testing.T, patched *Program, freshGuard sefl.Instr) {
	t.Helper()
	fresh := Compile(freshGuard, "el", 0, "el.out[1]")
	pn, fn := guardNode(t, patched), guardNode(t, fresh)
	if pn.FP != fn.FP {
		t.Fatalf("node fingerprint mismatch: %v vs %v", pn.FP, fn.FP)
	}
	if !pn.IT.Table.Equal(fn.IT.Table) || pn.IT.Table.Fp() != fn.IT.Table.Fp() {
		t.Fatalf("table mismatch: %v (fp %v) vs %v (fp %v)",
			pn.IT.Table, pn.IT.Table.Fp(), fn.IT.Table, fn.IT.Table.Fp())
	}
	if !deepEqualCond(pn, fn) {
		t.Fatal("patched guard node not structurally equal to fresh compile")
	}
	if pn.Memoizable != fn.Memoizable || len(pn.Inputs) != len(fn.Inputs) {
		t.Fatalf("derived state mismatch: memoizable %v/%v inputs %d/%d",
			pn.Memoizable, fn.Memoizable, len(pn.Inputs), len(fn.Inputs))
	}
	if pn.Words != fn.Words || pn.HasSym != fn.HasSym {
		t.Fatalf("size mismatch: words %d/%d hasSym %v/%v", pn.Words, fn.Words, pn.HasSym, fn.HasSym)
	}
	if got, want := fmt.Sprint(constrainIns(patched)), fmt.Sprint(constrainIns(fresh)); got != want {
		t.Fatalf("rendered instruction mismatch:\n got %s\nwant %s", got, want)
	}
}

func TestPatchGuardMACInsert(t *testing.T) {
	macs := []uint64{0x10, 0x20, 0x30, 0x40, 0x50}
	p := Compile(patchMACGuard(macs), "el", 0, "el.out[1]")
	node := guardNode(t, p)
	oldFp := node.IT.Table.Fp()
	if node.memo.Load() == nil && node.Memoizable {
		// Warm the memo path indirectly: nothing to do, just assert gating on.
		_ = node
	}

	newMacs := []uint64{0x10, 0x20, 0x25, 0x30, 0x40, 0x50}
	rows := make([]ITRow, len(newMacs))
	for i, m := range newMacs {
		rows[i] = ITRow{Kind: ITEq, V: m}
	}
	table := node.IT.Table.InsertValue(0x25)
	if !table.Equal(BuildGuardTable(rows, sefl.MACWidth)) {
		t.Fatal("incrementally patched table differs from full rebuild")
	}
	if n := PatchGuard(p, PatchSpec{OldFp: oldFp, Rows: rows, Table: table, Ins: patchMACGuard(newMacs)}); n != 1 {
		t.Fatalf("PatchGuard patched %d nodes, want 1", n)
	}
	requireSameAsFresh(t, p, patchMACGuard(newMacs))

	// The old table fingerprint no longer matches anything.
	if n := PatchGuard(p, PatchSpec{OldFp: oldFp, Rows: rows, Table: table}); n != 0 {
		t.Fatalf("stale-fp patch matched %d nodes, want 0", n)
	}
}

func TestPatchGuardPrefixDeleteWithExclusions(t *testing.T) {
	const w = 32
	oldRows := []patchPrefixRow{
		{v: 0x0A000000, len: 8, excl: []ITExcl{{V: 0x0A010000, Len: 16}}},
		{v: 0x0A010000, len: 16},
		{v: 0x14000000, len: 8},
		{v: 0x1E000000, len: 8},
		{v: 0x28000000, len: 8},
	}
	p := Compile(patchPrefixGuard(oldRows), "el", 0, "el.out[1]")
	node := guardNode(t, p)
	oldFp := node.IT.Table.Fp()

	// Delete the 10.1/16 route: the containing /8 loses its exclusion, so
	// membership inside the deleted prefix's window is now covered by the /8.
	newRows := []patchPrefixRow{
		{v: 0x0A000000, len: 8},
		{v: 0x14000000, len: 8},
		{v: 0x1E000000, len: 8},
		{v: 0x28000000, len: 8},
	}
	itRows := make([]ITRow, len(newRows))
	for i, r := range newRows {
		itRows[i] = ITRow{Kind: ITPrefix, V: r.v, Len: r.len, Excl: r.excl}
	}
	// Recompute only the deleted prefix's window, the way delta application
	// does: replacement spans = union of the new rows' sets clipped to it.
	lo := uint64(0x0A010000)
	hi := lo | (uint64(1)<<16 - 1)
	window := solver.FromRange(lo, hi, w)
	var repl []expr.Span
	for _, r := range itRows {
		repl = append(repl, RowSolutionSet(r, w).Intersect(window).Intervals()...)
	}
	table := node.IT.Table.PatchWindow(lo, hi, repl)
	if !table.Equal(BuildGuardTable(itRows, w)) || table.Fp() != BuildGuardTable(itRows, w).Fp() {
		t.Fatal("windowed patch differs from full rebuild")
	}
	if n := PatchGuard(p, PatchSpec{OldFp: oldFp, Rows: itRows, Table: table, Ins: patchPrefixGuard(newRows)}); n != 1 {
		t.Fatalf("PatchGuard patched %d nodes, want 1", n)
	}
	requireSameAsFresh(t, p, patchPrefixGuard(newRows))
}

func TestGuardTables(t *testing.T) {
	p := Compile(patchMACGuard([]uint64{1, 2, 3, 4}), "el", 0, "el.out[0]")
	its := GuardTables(p)
	if len(its) != 1 || its[0].Table == nil {
		t.Fatalf("GuardTables returned %d tables", len(its))
	}
	if its[0].Table.Fp() != guardNode(t, p).IT.Table.Fp() {
		t.Fatal("GuardTables returned a different table than the guard node")
	}
}
