// Wire codec for summaries. A summary only references IR — its steps point
// at ops of the program it summarizes, never copies of them — so the wire
// form is the DAG's shape alone: per node, the op indices of its steps plus
// the terminator payload (node indices, children before parents, like the
// condition table in the program codec). The decoder rebuilds against the
// already-decoded program through the same step constructor Summarize uses,
// so a shipped summary shares the program's interned conditions, evaluation
// memos and interval tables exactly like a locally built one.
package prog

import "fmt"

// WireSummary is the concrete form of one Summary, minus the program it
// summarizes (shipped separately as a WireProgram and resolved on decode).
type WireSummary struct {
	// Nodes lists the DAG's nodes children-before-parents; Root indexes it.
	Nodes []WireSumNode
	Root  int32
}

// WireSumNode is the concrete form of one SumNode. Steps are op indices
// into the summarized program; Then/Else/Next index Nodes (-1 when absent).
type WireSumNode struct {
	Steps []int32
	Term  TermKind
	Br    int32
	Then  int32
	Else  int32
	Next  int32
}

// EncodeSummary converts a summary to its wire form.
func EncodeSummary(s *Summary) (*WireSummary, error) {
	w := &WireSummary{Root: -1}
	idx := make(map[*SumNode]int32)
	root, err := encodeSumNode(w, idx, s.Root, s.Prog)
	if err != nil {
		return nil, err
	}
	w.Root = root
	return w, nil
}

// encodeSumNode flattens one node (children first) into the table,
// deduplicating by pointer so shared continuations stay shared.
func encodeSumNode(w *WireSummary, idx map[*SumNode]int32, n *SumNode, p *Program) (int32, error) {
	if n == nil {
		return -1, nil
	}
	if i, ok := idx[n]; ok {
		return i, nil
	}
	wn := WireSumNode{Term: n.Term, Br: -1, Then: -1, Else: -1, Next: -1}
	for _, st := range n.Steps {
		if st.OpIdx < 0 || int(st.OpIdx) >= len(p.Ops) {
			return 0, fmt.Errorf("prog: encode summary %s: step references missing op %d", p.Label, st.OpIdx)
		}
		wn.Steps = append(wn.Steps, st.OpIdx)
	}
	var err error
	switch n.Term {
	case TermBranch:
		wn.Br = n.BrIdx
		if wn.Then, err = encodeSumNode(w, idx, n.Then, p); err != nil {
			return 0, err
		}
		if wn.Else, err = encodeSumNode(w, idx, n.Else, p); err != nil {
			return 0, err
		}
	case TermJump:
		if wn.Next, err = encodeSumNode(w, idx, n.Next, p); err != nil {
			return 0, err
		}
	}
	i := int32(len(w.Nodes))
	w.Nodes = append(w.Nodes, wn)
	idx[n] = i
	return i, nil
}

// DecodeSummary rebuilds a summary against the decoded program it
// summarizes. Steps are rebuilt through the same constructor Summarize
// uses, so shipped and local summaries execute identically; lazy trace and
// failure renders start cold and warm on first use, like condition memos.
func DecodeSummary(p *Program, w *WireSummary) (*Summary, error) {
	if w.Root < 0 || int(w.Root) >= len(w.Nodes) {
		return nil, fmt.Errorf("prog: decode summary %s: root references missing node %d", p.Label, w.Root)
	}
	nodes := make([]*SumNode, len(w.Nodes))
	steps := 0
	for i := range w.Nodes {
		wn := &w.Nodes[i]
		n := &SumNode{Term: wn.Term}
		for _, oi := range wn.Steps {
			if oi < 0 || int(oi) >= len(p.Ops) {
				return nil, fmt.Errorf("prog: decode summary %s: node %d references missing op %d", p.Label, i, oi)
			}
			n.Steps = append(n.Steps, newSumStep(&p.Ops[oi], oi))
			steps++
		}
		resolve := func(ni int32) (*SumNode, error) {
			if ni < 0 || int(ni) >= i {
				return nil, fmt.Errorf("prog: decode summary %s: node %d references out-of-order child %d", p.Label, i, ni)
			}
			return nodes[ni], nil
		}
		var err error
		switch wn.Term {
		case TermEnd:
		case TermJump:
			if n.Next, err = resolve(wn.Next); err != nil {
				return nil, err
			}
		case TermBranch:
			if wn.Br < 0 || int(wn.Br) >= len(p.Ops) {
				return nil, fmt.Errorf("prog: decode summary %s: node %d references missing branch op %d", p.Label, i, wn.Br)
			}
			n.BrOp = &p.Ops[wn.Br]
			n.BrIdx = wn.Br
			if n.Then, err = resolve(wn.Then); err != nil {
				return nil, err
			}
			if n.Else, err = resolve(wn.Else); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("prog: decode summary %s: node %d has unknown terminator %d", p.Label, i, wn.Term)
		}
		nodes[i] = n
	}
	s := &Summary{Prog: p, Root: nodes[w.Root], Nodes: len(nodes), Steps: steps}
	s.Rows = countRows(s.Root, make(map[*SumNode]int64))
	return s, nil
}
