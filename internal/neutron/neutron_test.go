package neutron

import (
	"strings"
	"testing"

	"symnet/internal/core"
	"symnet/internal/sefl"
	"symnet/internal/verify"
)

const tenantConfig = `{
  "routers": [
    {"name": "r1", "routes": [
      {"prefix": "10.0.1.0/24", "port": 0},
      {"prefix": "0.0.0.0/0", "port": 1}
    ]}
  ],
  "firewalls": [
    {"name": "fw1", "rules": [
      {"action": "allow", "protocol": "tcp", "dst_port": 80},
      {"action": "allow", "protocol": "tcp", "dst_port": 443},
      {"action": "deny"}
    ]}
  ],
  "networks": [{"name": "web"}, {"name": "ext"}],
  "links": [
    {"from": "r1", "from_port": 0, "to": "fw1", "to_port": 0},
    {"from": "fw1", "from_port": 0, "to": "web", "to_port": 0},
    {"from": "r1", "from_port": 1, "to": "ext", "to_port": 0}
  ]
}`

func TestParseAndBuild(t *testing.T) {
	cfg, err := Parse(strings.NewReader(tenantConfig))
	if err != nil {
		t.Fatal(err)
	}
	net, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(net, core.PortRef{Elem: "r1", Port: 0}, sefl.NewTCPPacket(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Web network admits only ports 80/443 within 10.0.1.0/24.
	webPaths := res.DeliveredAt("web", 0)
	if len(webPaths) != 2 {
		t.Fatalf("web paths = %d, want 2 (80 and 443)", len(webPaths))
	}
	var total uint64
	for _, p := range webPaths {
		d, err := verify.FieldDomain(p, sefl.TcpDst)
		if err != nil {
			t.Fatal(err)
		}
		total += d.Size()
		dst, err := verify.FieldDomain(p, sefl.IPDst)
		if err != nil {
			t.Fatal(err)
		}
		if mx, _ := dst.Max(); mx > sefl.IPToNumber("10.0.1.255") {
			t.Fatalf("web path admits address outside the routed prefix: %v", dst)
		}
	}
	if total != 2 {
		t.Fatalf("admitted ports = %d, want exactly {80, 443}", total)
	}
	// External network must be reachable with everything not in 10.0.1/24.
	ext := res.DeliveredAt("ext", 0)
	if len(ext) != 1 {
		t.Fatalf("ext paths = %d", len(ext))
	}
	d, _ := verify.FieldDomain(ext[0], sefl.IPDst)
	if d.Contains(sefl.IPToNumber("10.0.1.5")) {
		t.Fatal("default route must exclude the more-specific tenant prefix")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`{"unknown_field": 1}`,
		`{`,
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("config %q must fail", c)
		}
	}
	// Build-time errors.
	bad := []string{
		`{"routers":[{"name":"r","routes":[]}]}`,
		`{"routers":[{"name":"r","routes":[{"prefix":"nonsense","port":0}]}]}`,
		`{"firewalls":[{"name":"f","rules":[{"action":"frobnicate"}]}]}`,
		`{"links":[{"from":"ghost","to":"ghost2"}]}`,
	}
	for _, c := range bad {
		cfg, err := Parse(strings.NewReader(c))
		if err != nil {
			continue
		}
		if _, err := Build(cfg); err == nil {
			t.Errorf("config %q must fail to build", c)
		}
	}
}
