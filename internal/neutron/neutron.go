// Package neutron translates OpenStack-Neutron-style tenant network
// configurations into SEFL models (§7.1: "We have written an Openstack
// plugin that takes the router and firewall configurations and translates
// them into SEFL models"), so reachability can be checked *before* the
// virtual network is instantiated.
//
// The configuration is a self-contained JSON document:
//
//	{
//	  "routers":  [{"name": "r1", "routes": [{"prefix": "10.0.0.0/24", "port": 0}]}],
//	  "firewalls":[{"name": "fw1", "rules": [
//	      {"action": "allow", "protocol": "tcp", "dst_port": 80},
//	      {"action": "deny"}]}],
//	  "networks": [{"name": "net1"}],
//	  "links":    [{"from": "r1", "from_port": 0, "to": "fw1", "to_port": 0}]
//	}
package neutron

import (
	"encoding/json"
	"fmt"
	"io"

	"symnet/internal/core"
	"symnet/internal/models"
	"symnet/internal/sefl"
	"symnet/internal/tables"
)

// Config is the parsed tenant topology.
type Config struct {
	Routers   []Router   `json:"routers"`
	Firewalls []Firewall `json:"firewalls"`
	Networks  []Network  `json:"networks"`
	Links     []Link     `json:"links"`
}

// Router is a tenant router with static routes.
type Router struct {
	Name   string  `json:"name"`
	Routes []Route `json:"routes"`
}

// Route is one static route.
type Route struct {
	Prefix string `json:"prefix"`
	Port   int    `json:"port"`
}

// Firewall is a security-group-style packet filter with first-match rules.
type Firewall struct {
	Name  string `json:"name"`
	Rules []Rule `json:"rules"`
}

// Rule is one firewall rule; zero-valued matchers are wildcards.
type Rule struct {
	Action   string `json:"action"` // "allow" or "deny"
	Protocol string `json:"protocol,omitempty"`
	DstPort  uint64 `json:"dst_port,omitempty"`
	SrcCIDR  string `json:"src_cidr,omitempty"`
	DstCIDR  string `json:"dst_cidr,omitempty"`
}

// Network is a tenant L2 network (modeled as a delivery endpoint).
type Network struct {
	Name string `json:"name"`
}

// Link is a unidirectional connection.
type Link struct {
	From     string `json:"from"`
	FromPort int    `json:"from_port"`
	To       string `json:"to"`
	ToPort   int    `json:"to_port"`
}

// Parse reads a Neutron-style JSON configuration.
func Parse(r io.Reader) (*Config, error) {
	var cfg Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("neutron: %w", err)
	}
	return &cfg, nil
}

// Build generates the SymNet network for a tenant configuration.
func Build(cfg *Config) (*core.Network, error) {
	net := core.NewNetwork()
	for _, r := range cfg.Routers {
		if len(r.Routes) == 0 {
			return nil, fmt.Errorf("neutron: router %q has no routes", r.Name)
		}
		var fib tables.FIB
		maxPort := 0
		for _, rt := range r.Routes {
			pfx, plen, err := tables.ParsePrefix(rt.Prefix)
			if err != nil {
				return nil, fmt.Errorf("neutron: router %q: %w", r.Name, err)
			}
			fib = append(fib, tables.Route{Prefix: pfx, Len: plen, Port: rt.Port})
			if rt.Port > maxPort {
				maxPort = rt.Port
			}
		}
		e := net.AddElement(r.Name, "router", maxPort+1, maxPort+1)
		if err := models.Router(e, fib, models.Egress); err != nil {
			return nil, fmt.Errorf("neutron: router %q: %w", r.Name, err)
		}
	}
	for _, fw := range cfg.Firewalls {
		e := net.AddElement(fw.Name, "firewall", 1, 1)
		code, err := firewallCode(fw)
		if err != nil {
			return nil, err
		}
		e.SetInCode(core.WildcardPort, code)
	}
	for _, n := range cfg.Networks {
		e := net.AddElement(n.Name, "network", 1, 0)
		e.SetInCode(0, sefl.NoOp{})
	}
	for _, l := range cfg.Links {
		if err := net.Link(l.From, l.FromPort, l.To, l.ToPort); err != nil {
			return nil, fmt.Errorf("neutron: %w", err)
		}
	}
	return net, nil
}

// firewallCode compiles first-match-wins rules; the implicit default denies.
func firewallCode(fw Firewall) (sefl.Instr, error) {
	code := sefl.Instr(sefl.Fail{Msg: fw.Name + ": implicit deny"})
	for i := len(fw.Rules) - 1; i >= 0; i-- {
		r := fw.Rules[i]
		cond, err := ruleCond(r)
		if err != nil {
			return nil, fmt.Errorf("neutron: firewall %q rule %d: %w", fw.Name, i, err)
		}
		var hit sefl.Instr
		switch r.Action {
		case "allow":
			hit = sefl.Forward{Port: 0}
		case "deny":
			hit = sefl.Fail{Msg: fmt.Sprintf("%s: denied by rule %d", fw.Name, i)}
		default:
			return nil, fmt.Errorf("neutron: firewall %q rule %d: unknown action %q", fw.Name, i, r.Action)
		}
		code = sefl.If{C: cond, Then: hit, Else: code}
	}
	return code, nil
}

func ruleCond(r Rule) (sefl.Cond, error) {
	var cs []sefl.Cond
	switch r.Protocol {
	case "":
	case "tcp":
		cs = append(cs, sefl.Eq(sefl.Ref{LV: sefl.IPProto}, sefl.C(uint64(sefl.ProtoTCP))))
	case "udp":
		cs = append(cs, sefl.Eq(sefl.Ref{LV: sefl.IPProto}, sefl.C(uint64(sefl.ProtoUDP))))
	case "icmp":
		cs = append(cs, sefl.Eq(sefl.Ref{LV: sefl.IPProto}, sefl.C(uint64(sefl.ProtoICMP))))
	default:
		return nil, fmt.Errorf("unknown protocol %q", r.Protocol)
	}
	if r.DstPort != 0 {
		cs = append(cs, sefl.Eq(sefl.Ref{LV: sefl.TcpDst}, sefl.CW(r.DstPort, 16)))
	}
	if r.SrcCIDR != "" {
		pfx, plen, err := tables.ParsePrefix(r.SrcCIDR)
		if err != nil {
			return nil, err
		}
		cs = append(cs, sefl.Prefix{E: sefl.Ref{LV: sefl.IPSrc}, Value: pfx, Len: plen})
	}
	if r.DstCIDR != "" {
		pfx, plen, err := tables.ParsePrefix(r.DstCIDR)
		if err != nil {
			return nil, err
		}
		cs = append(cs, sefl.Prefix{E: sefl.Ref{LV: sefl.IPDst}, Value: pfx, Len: plen})
	}
	if len(cs) == 0 {
		return sefl.CBool(true), nil
	}
	return sefl.AndC(cs...), nil
}
