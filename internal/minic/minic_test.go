package minic

import (
	"testing"

	"symnet/internal/expr"
)

func TestConcreteExecution(t *testing.T) {
	// x = 3; y = x + 4; if (y > 5) r = 1 else r = 2; return r.
	prog := &Program{
		Vars: map[string]uint64{"x": 3, "y": 0, "r": 0},
		Body: []Stmt{
			Assign{Name: "y", E: Add(V("x"), N(4))},
			If{Cond: Gt(V("y"), N(5)), Then: []Stmt{Assign{Name: "r", E: N(1)}}, Else: []Stmt{Assign{Name: "r", E: N(2)}}},
			Return{E: V("r")},
		},
	}
	res := Run(prog, Limits{}, nil)
	if len(res.Paths) != 1 {
		t.Fatalf("concrete program must have one path, got %d", len(res.Paths))
	}
	if res.Paths[0].Status != Returned {
		t.Fatalf("status %v", res.Paths[0].Status)
	}
	if v, _ := res.Paths[0].Ret.ConstVal(); v != 1 {
		t.Fatalf("returned %d", v)
	}
}

func TestSymbolicBranchForks(t *testing.T) {
	prog := &Program{
		Arrays:         map[string]int{"a": 1},
		SymbolicArrays: []string{"a"},
		Vars:           map[string]uint64{"x": 0},
		Body: []Stmt{
			Assign{Name: "x", E: At("a", N(0))},
			If{Cond: Gt(V("x"), N(10)), Then: []Stmt{Return{E: N(1)}}, Else: []Stmt{Return{E: N(0)}}},
		},
	}
	res := Run(prog, Limits{}, nil)
	if len(res.Paths) != 2 {
		t.Fatalf("symbolic branch must fork into 2 paths, got %d", len(res.Paths))
	}
	rets := map[uint64]bool{}
	for _, p := range res.Paths {
		v, _ := p.Ret.ConstVal()
		rets[v] = true
	}
	if !rets[0] || !rets[1] {
		t.Fatalf("returns %v", rets)
	}
}

func TestConcreteLoop(t *testing.T) {
	// sum = 0; i = 0; while (i < 5) { sum += i; i++ } — single path.
	prog := &Program{
		Vars: map[string]uint64{"sum": 0, "i": 0},
		Body: []Stmt{
			While{Cond: Lt(V("i"), N(5)), Body: []Stmt{
				Assign{Name: "sum", E: Add(V("sum"), V("i"))},
				Assign{Name: "i", E: Add(V("i"), N(1))},
			}},
			Return{E: V("sum")},
		},
	}
	res := Run(prog, Limits{}, nil)
	if len(res.Paths) != 1 {
		t.Fatalf("paths = %d", len(res.Paths))
	}
	if v, _ := res.Paths[0].Ret.ConstVal(); v != 10 {
		t.Fatalf("sum = %d", v)
	}
}

func TestOutOfBoundsDetected(t *testing.T) {
	prog := &Program{
		Arrays:         map[string]int{"a": 4},
		SymbolicArrays: []string{"a"},
		Vars:           map[string]uint64{"i": 0},
		Body: []Stmt{
			Assign{Name: "i", E: At("a", N(0))}, // i in [0,255]
			Store{Array: "a", Idx: V("i"), E: N(7)},
			Return{E: N(0)},
		},
	}
	res := Run(prog, Limits{}, nil)
	var mem, ok int
	for _, p := range res.Paths {
		switch p.Status {
		case MemError:
			mem++
		case Returned:
			ok++
		}
	}
	if mem != 1 {
		t.Fatalf("memory-error paths = %d, want 1 (index can exceed bounds)", mem)
	}
	if ok != 4 {
		t.Fatalf("in-bounds paths = %d, want 4 (one per feasible index)", ok)
	}
}

func TestSwitchForks(t *testing.T) {
	prog := &Program{
		Arrays:         map[string]int{"a": 1},
		SymbolicArrays: []string{"a"},
		Vars:           map[string]uint64{"x": 0},
		Body: []Stmt{
			Assign{Name: "x", E: At("a", N(0))},
			Switch{E: V("x"),
				Cases: []SwitchCase{
					{Val: 0, Body: []Stmt{Return{E: N(10)}}},
					{Val: 1, Body: []Stmt{Return{E: N(11)}}},
				},
				Default: []Stmt{Return{E: N(12)}},
			},
		},
	}
	res := Run(prog, Limits{}, nil)
	if len(res.Paths) != 3 {
		t.Fatalf("switch must fork 3 ways, got %d", len(res.Paths))
	}
}

// TestTable1PathCounts reproduces the path-count column of Table 1: the
// number of Klee paths on the Fig. 1 options-parsing code for option-field
// lengths 1..7 (3, 8, 19, 45, 106, 248, 510 in the paper).
func TestTable1PathCounts(t *testing.T) {
	want := map[int]int{1: 3, 2: 8, 3: 19}
	for length := 1; length <= 3; length++ {
		res := Run(OptionsProgram(length, DefaultASAConfig()), Limits{}, nil)
		if res.Exhausted {
			t.Fatalf("length %d exhausted budget", length)
		}
		if got := len(res.Paths); got != want[length] {
			t.Errorf("length %d: paths = %d, want %d", length, got, want[length])
		}
	}
}

func TestTable1Growth(t *testing.T) {
	if testing.Short() {
		t.Skip("exponential growth check")
	}
	var prev int
	for length := 1; length <= 7; length++ {
		res := Run(OptionsProgram(length, DefaultASAConfig()), Limits{}, nil)
		got := len(res.Paths)
		t.Logf("length %d: %d paths, %d steps", length, got, res.TotalSteps)
		if length > 2 && got < prev*2 {
			t.Errorf("length %d: growth stalled (%d -> %d), expected ~exponential", length, prev, got)
		}
		prev = got
	}
}

func TestOptionsMemorySafety(t *testing.T) {
	// The parsing code itself never reads out of the 40-byte buffer for
	// small lengths: Klee "proves that the parsing code is memory safe ...
	// when options length is less than or equal to six".
	res := Run(OptionsProgram(4, DefaultASAConfig()), Limits{}, nil)
	for _, p := range res.Paths {
		if p.Status == MemError {
			t.Fatal("options parsing must be memory-safe at length 4")
		}
	}
}

func TestOptionsDropPath(t *testing.T) {
	// With an MD5 option (kind 19, DROP class), some path must return 0.
	res := Run(OptionsProgram(2, DefaultASAConfig()), Limits{}, nil)
	dropped := false
	for _, p := range res.Paths {
		if p.Status == Returned {
			if v, isConst := p.Ret.ConstVal(); isConst && v == 0 {
				dropped = true
				// The dropping path must have opcode == 19 feasible.
				op := p.Vars["opcode"]
				if !p.Ctx.Domain(op).Contains(OptMD5) {
					t.Fatal("drop path must be the MD5 option")
				}
			}
		}
	}
	if !dropped {
		t.Fatal("no drop path found")
	}
}

func TestConcreteOptionsModel(t *testing.T) {
	res := Run(OptionsProgram(2, DefaultASAConfig()), Limits{}, nil)
	okPaths := 0
	for _, p := range res.Paths {
		if p.Status != Returned && p.Status != OffEnd {
			continue
		}
		buf, ok := ConcreteOptions(p)
		if !ok {
			t.Fatal("model generation failed on a feasible path")
		}
		if len(buf) != OptionsBufLen {
			t.Fatalf("buffer length %d", len(buf))
		}
		okPaths++
	}
	if okPaths == 0 {
		t.Fatal("no feasible paths")
	}
}

func TestKilledOnBudget(t *testing.T) {
	// Unbounded loop must be killed by the step budget, not hang.
	prog := &Program{
		Vars: map[string]uint64{"i": 0},
		Body: []Stmt{
			While{Cond: Ge(V("i"), N(0)), Body: []Stmt{
				Assign{Name: "i", E: Add(V("i"), N(1))},
			}},
		},
	}
	res := Run(prog, Limits{MaxSteps: 100, TotalSteps: 1000}, nil)
	if !res.Exhausted {
		t.Fatal("budget must be marked exhausted")
	}
	killed := false
	for _, p := range res.Paths {
		if p.Status == Killed {
			killed = true
		}
	}
	if !killed {
		t.Fatal("some path must be killed")
	}
}

func TestParseOptionsHelper(t *testing.T) {
	buf := []uint64{1, 1, 2, 4, 0, 0, 8, 10}
	// NOP NOP MSS(len4: bytes 2-5) then EOL at index... MSS occupies 2,3,4,5;
	// index 6 is kind 8 len 10 but length runs out.
	kinds := ParseOptions(buf, 8)
	if len(kinds) != 1 || kinds[0] != 2 {
		t.Fatalf("kinds = %v", kinds)
	}
	var mask expr.Lin // silence unused import if expr usage changes
	_ = mask
}
