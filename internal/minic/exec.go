package minic

import (
	"fmt"

	"symnet/internal/expr"
	"symnet/internal/solver"
)

// PathStatus describes how one symbolic execution path of a mini-C program
// ended.
type PathStatus uint8

const (
	// OffEnd: execution fell off the end of the program.
	OffEnd PathStatus = iota
	// Returned: a Return statement executed.
	Returned
	// MemError: an array access was (or could be) out of bounds.
	MemError
	// Killed: the per-path step budget was exhausted.
	Killed
)

func (s PathStatus) String() string {
	switch s {
	case OffEnd:
		return "off-end"
	case Returned:
		return "returned"
	case MemError:
		return "memory-error"
	case Killed:
		return "killed"
	}
	return "unknown"
}

// Outcome is one finished execution path.
type Outcome struct {
	Status PathStatus
	Ret    expr.Lin // valid when Status == Returned
	Vars   map[string]expr.Lin
	Arrays map[string][]expr.Lin
	Ctx    *solver.Context
	Steps  int
}

// Result aggregates a symbolic run.
type Result struct {
	Paths []Outcome
	// Exhausted is set when MaxPaths or the global step budget was hit;
	// results are then incomplete — exactly Klee's behaviour when stopped
	// after its time budget (paper: "We stop the tools after one hour").
	Exhausted  bool
	TotalSteps int
}

// Limits bounds a symbolic run.
type Limits struct {
	MaxPaths   int // maximum finished paths (default 1 << 20)
	MaxSteps   int // per-path statement budget (default 1 << 16)
	TotalSteps int // global statement budget (default 1 << 24)
}

func (l Limits) withDefaults() Limits {
	if l.MaxPaths == 0 {
		l.MaxPaths = 1 << 20
	}
	if l.MaxSteps == 0 {
		l.MaxSteps = 1 << 16
	}
	if l.TotalSteps == 0 {
		l.TotalSteps = 1 << 24
	}
	return l
}

// control says how a statement sequence terminated.
type control uint8

const (
	ctlNormal control = iota
	ctlBreak
	ctlContinue
	ctlReturn
)

// mstate is one in-flight execution state.
type mstate struct {
	vars   map[string]expr.Lin
	arrays map[string][]expr.Lin
	ctx    *solver.Context
	steps  int
}

func (st *mstate) clone() *mstate {
	n := &mstate{
		vars:   make(map[string]expr.Lin, len(st.vars)),
		arrays: make(map[string][]expr.Lin, len(st.arrays)),
		ctx:    st.ctx.Clone(),
		steps:  st.steps,
	}
	for k, v := range st.vars {
		n.vars[k] = v
	}
	for k, v := range st.arrays {
		n.arrays[k] = append([]expr.Lin(nil), v...)
	}
	return n
}

// branch pairs a state with how its control flow ended.
type branch struct {
	st  *mstate
	ctl control
	ret expr.Lin
	err PathStatus // set to MemError when a memory violation killed it
	bad bool
}

// executor carries run-wide bookkeeping.
type executor struct {
	alloc  *expr.Alloc
	limits Limits
	result *Result
	stats  *solver.Stats
}

// Run symbolically executes a program with the naive forking strategy.
// All paths of the run share a satisfiability memo cache: the naive
// executor re-decides near-identical constraint prefixes on every fork,
// which is exactly the redundancy the cache collapses.
func Run(prog *Program, limits Limits, stats *solver.Stats) *Result {
	limits = limits.withDefaults()
	if stats == nil {
		stats = &solver.Stats{}
	}
	ex := &executor{alloc: &expr.Alloc{}, limits: limits, result: &Result{}, stats: stats}
	st := &mstate{
		vars:   make(map[string]expr.Lin),
		arrays: make(map[string][]expr.Lin),
		ctx:    solver.NewContext(stats),
	}
	st.ctx.SetCache(solver.NewSatCache())
	for name, v := range prog.Vars {
		st.vars[name] = expr.Const(v, 64)
	}
	symbolic := make(map[string]bool)
	for _, a := range prog.SymbolicArrays {
		symbolic[a] = true
	}
	for name, n := range prog.Arrays {
		cells := make([]expr.Lin, n)
		if init, ok := prog.Init[name]; ok {
			for i := range cells {
				if i < len(init) {
					cells[i] = expr.Const(init[i], 64)
				} else {
					cells[i] = expr.Const(0, 64)
				}
			}
		} else if symbolic[name] {
			for i := range cells {
				s := ex.alloc.Fresh(64, fmt.Sprintf("%s[%d]", name, i))
				st.ctx.Add(expr.NewCmp(expr.Le, s, expr.Const(255, 64)))
				cells[i] = s
			}
		} else {
			for i := range cells {
				cells[i] = expr.Const(0, 64)
			}
		}
		st.arrays[name] = cells
	}
	for _, b := range ex.execStmts(st, prog.Body) {
		ex.finish(b)
	}
	return ex.result
}

func (ex *executor) finish(b branch) {
	o := Outcome{
		Vars:   b.st.vars,
		Arrays: b.st.arrays,
		Ctx:    b.st.ctx,
		Steps:  b.st.steps,
	}
	switch {
	case b.bad:
		o.Status = b.err
	case b.ctl == ctlReturn:
		o.Status = Returned
		o.Ret = b.ret
	default:
		o.Status = OffEnd
	}
	ex.result.Paths = append(ex.result.Paths, o)
	if len(ex.result.Paths) >= ex.limits.MaxPaths {
		ex.result.Exhausted = true
	}
}

func (ex *executor) budget(st *mstate) bool {
	st.steps++
	ex.result.TotalSteps++
	if st.steps > ex.limits.MaxSteps || ex.result.TotalSteps > ex.limits.TotalSteps {
		ex.result.Exhausted = true
		return false
	}
	return true
}

func (ex *executor) stop() bool {
	return ex.result.Exhausted
}

// execStmts runs a statement list, returning all resulting branches.
func (ex *executor) execStmts(st *mstate, stmts []Stmt) []branch {
	states := []branch{{st: st, ctl: ctlNormal}}
	for _, s := range stmts {
		var next []branch
		for _, b := range states {
			if b.ctl != ctlNormal || b.bad {
				next = append(next, b)
				continue
			}
			next = append(next, ex.execStmt(b.st, s)...)
		}
		states = next
	}
	return states
}

func (ex *executor) execStmt(st *mstate, s Stmt) []branch {
	if !ex.budget(st) {
		return []branch{{st: st, bad: true, err: Killed}}
	}
	switch v := s.(type) {
	case Assign:
		var out []branch
		for _, ev := range ex.evalExpr(st, v.E) {
			if ev.bad {
				out = append(out, branch{st: ev.st, bad: true, err: ev.err})
				continue
			}
			ev.st.vars[v.Name] = ev.val
			out = append(out, branch{st: ev.st, ctl: ctlNormal})
		}
		return out

	case Store:
		var out []branch
		for _, ev := range ex.evalExpr(st, v.E) {
			if ev.bad {
				out = append(out, branch{st: ev.st, bad: true, err: ev.err})
				continue
			}
			val := ev.val
			for _, ix := range ex.resolveIndex(ev.st, v.Array, v.Idx) {
				if ix.bad {
					out = append(out, branch{st: ix.st, bad: true, err: ix.err})
					continue
				}
				cells := ix.st.arrays[v.Array]
				cells[ix.idx] = val
				out = append(out, branch{st: ix.st, ctl: ctlNormal})
			}
		}
		return out

	case If:
		var out []branch
		for _, cb := range ex.evalCond(st, v.Cond) {
			if cb.bad {
				out = append(out, branch{st: cb.st, bad: true, err: cb.err})
				continue
			}
			out = append(out, ex.forkBranch(cb.st, cb.cond, v.Then, v.Else)...)
		}
		return out

	case While:
		return ex.execWhile(st, v)

	case Switch:
		return ex.execSwitch(st, v)

	case Return:
		var out []branch
		for _, ev := range ex.evalExpr(st, v.E) {
			if ev.bad {
				out = append(out, branch{st: ev.st, bad: true, err: ev.err})
				continue
			}
			out = append(out, branch{st: ev.st, ctl: ctlReturn, ret: ev.val})
		}
		return out

	case Break:
		return []branch{{st: st, ctl: ctlBreak}}

	case Continue:
		return []branch{{st: st, ctl: ctlContinue}}
	}
	panic(fmt.Sprintf("minic: unknown statement %T", s))
}

// forkBranch forks on cond: feasible positives run thenS, feasible
// negatives run elseS.
func (ex *executor) forkBranch(st *mstate, cond expr.Cond, thenS, elseS []Stmt) []branch {
	var out []branch
	thenSt := st.clone()
	if thenSt.ctx.Add(cond) && (thenSt.ctx.PendingOrs() == 0 || thenSt.ctx.Sat()) {
		out = append(out, ex.execStmts(thenSt, thenS)...)
	}
	if st.ctx.Add(expr.NewNot(cond)) && (st.ctx.PendingOrs() == 0 || st.ctx.Sat()) {
		out = append(out, ex.execStmts(st, elseS)...)
	}
	return out
}

func (ex *executor) execWhile(st *mstate, w While) []branch {
	var done []branch
	frontier := []*mstate{st}
	for len(frontier) > 0 && !ex.stop() {
		var next []*mstate
		for _, s := range frontier {
			if !ex.budget(s) {
				done = append(done, branch{st: s, bad: true, err: Killed})
				continue
			}
			for _, cb := range ex.evalCond(s, w.Cond) {
				if cb.bad {
					done = append(done, branch{st: cb.st, bad: true, err: cb.err})
					continue
				}
				// True branch iterates; false branch exits the loop.
				trueSt := cb.st.clone()
				if trueSt.ctx.Add(cb.cond) && (trueSt.ctx.PendingOrs() == 0 || trueSt.ctx.Sat()) {
					for _, b := range ex.execStmts(trueSt, w.Body) {
						switch {
						case b.bad:
							done = append(done, b)
						case b.ctl == ctlBreak:
							b.ctl = ctlNormal
							done = append(done, b)
						case b.ctl == ctlReturn:
							done = append(done, b)
						default: // normal or continue: next iteration
							next = append(next, b.st)
						}
					}
				}
				if cb.st.ctx.Add(expr.NewNot(cb.cond)) && (cb.st.ctx.PendingOrs() == 0 || cb.st.ctx.Sat()) {
					done = append(done, branch{st: cb.st, ctl: ctlNormal})
				}
			}
		}
		frontier = next
	}
	for _, s := range frontier { // budget exhausted mid-loop
		done = append(done, branch{st: s, bad: true, err: Killed})
	}
	return done
}

func (ex *executor) execSwitch(st *mstate, sw Switch) []branch {
	var out []branch
	for _, ev := range ex.evalExpr(st, sw.E) {
		if ev.bad {
			out = append(out, branch{st: ev.st, bad: true, err: ev.err})
			continue
		}
		rem := ev.st // accumulates the negated case constraints
		matched := false
		for _, cs := range sw.Cases {
			cond := expr.NewCmp(expr.Eq, ev.val, expr.Const(cs.Val, 64))
			caseSt := rem.clone()
			if caseSt.ctx.Add(cond) && (caseSt.ctx.PendingOrs() == 0 || caseSt.ctx.Sat()) {
				out = append(out, ex.execStmts(caseSt, cs.Body)...)
			}
			if !rem.ctx.Add(expr.NewNot(cond)) {
				matched = true
				break
			}
		}
		if !matched {
			out = append(out, ex.execStmts(rem, sw.Default)...)
		}
	}
	return out
}

// evaluated expression value plus the state it belongs to (index forks can
// multiply states).
type evalRes struct {
	st  *mstate
	val expr.Lin
	bad bool
	err PathStatus
}

type idxRes struct {
	st  *mstate
	idx int
	bad bool
	err PathStatus
}

type condRes struct {
	st   *mstate
	cond expr.Cond
	bad  bool
	err  PathStatus
}

// evalExpr evaluates a value expression (no comparisons) and may fork on
// symbolic array indexes.
func (ex *executor) evalExpr(st *mstate, e Expr) []evalRes {
	switch v := e.(type) {
	case Const:
		return []evalRes{{st: st, val: expr.Const(v.V, 64)}}
	case Var:
		val, ok := st.vars[v.Name]
		if !ok {
			panic("minic: undefined variable " + v.Name)
		}
		return []evalRes{{st: st, val: val}}
	case Index:
		var out []evalRes
		for _, ix := range ex.resolveIndex(st, v.Array, v.Idx) {
			if ix.bad {
				out = append(out, evalRes{st: ix.st, bad: true, err: ix.err})
				continue
			}
			out = append(out, evalRes{st: ix.st, val: ix.st.arrays[v.Array][ix.idx]})
		}
		return out
	case Bin:
		switch v.Op {
		case OpAdd, OpSub:
			var out []evalRes
			for _, l := range ex.evalExpr(st, v.L) {
				if l.bad {
					out = append(out, l)
					continue
				}
				for _, r := range ex.evalExpr(l.st, v.R) {
					if r.bad {
						out = append(out, r)
						continue
					}
					if val, ok := combine(v.Op, l.val, r.val); ok {
						out = append(out, evalRes{st: r.st, val: val})
						continue
					}
					// Term shapes outside the linear language (const−sym,
					// sym−sym): concretize the right operand by forking, the
					// way naive engines concretize awkward symbolic values.
					for _, cr := range ex.concretize(r.st, r.val) {
						if cr.bad {
							out = append(out, cr)
							continue
						}
						val, ok := combine(v.Op, l.val, cr.val)
						if !ok {
							panic("minic: cannot linearize " + v.String())
						}
						out = append(out, evalRes{st: cr.st, val: val})
					}
				}
			}
			return out
		default:
			panic("minic: comparison used as value: " + v.String())
		}
	}
	panic(fmt.Sprintf("minic: unknown expression %T", e))
}

func combine(op BinOp, l, r expr.Lin) (expr.Lin, bool) {
	lv, lConst := l.ConstVal()
	rv, rConst := r.ConstVal()
	switch {
	case lConst && rConst:
		if op == OpAdd {
			return expr.Const(lv+rv, 64), true
		}
		return expr.Const(lv-rv, 64), true
	case !lConst && rConst:
		if op == OpAdd {
			return l.AddConst(rv), true
		}
		return l.SubConst(rv), true
	case lConst && !rConst && op == OpAdd:
		return r.AddConst(lv), true
	}
	return expr.Lin{}, false
}

// evalCond lowers a condition expression to a solver condition. Value
// sub-expressions may fork (array reads); boolean structure becomes one
// combined condition, matching how a real symbolic executor queries whole
// branch conditions.
func (ex *executor) evalCond(st *mstate, e Expr) []condRes {
	b, ok := e.(Bin)
	if !ok {
		// Scalar condition: e != 0.
		var out []condRes
		for _, ev := range ex.evalExpr(st, e) {
			if ev.bad {
				out = append(out, condRes{st: ev.st, bad: true, err: ev.err})
				continue
			}
			out = append(out, condRes{st: ev.st, cond: expr.NewCmp(expr.Ne, ev.val, expr.Const(0, 64))})
		}
		return out
	}
	switch b.Op {
	case OpAnd, OpOr:
		var out []condRes
		for _, l := range ex.evalCond(st, b.L) {
			if l.bad {
				out = append(out, l)
				continue
			}
			for _, r := range ex.evalCond(l.st, b.R) {
				if r.bad {
					out = append(out, r)
					continue
				}
				if b.Op == OpAnd {
					out = append(out, condRes{st: r.st, cond: expr.NewAnd(l.cond, r.cond)})
				} else {
					out = append(out, condRes{st: r.st, cond: expr.NewOr(l.cond, r.cond)})
				}
			}
		}
		return out
	case OpAdd, OpSub:
		// Arithmetic used as condition: value != 0.
		var out []condRes
		for _, ev := range ex.evalExpr(st, e) {
			if ev.bad {
				out = append(out, condRes{st: ev.st, bad: true, err: ev.err})
				continue
			}
			out = append(out, condRes{st: ev.st, cond: expr.NewCmp(expr.Ne, ev.val, expr.Const(0, 64))})
		}
		return out
	default:
		var cmpOp expr.CmpOp
		switch b.Op {
		case OpEq:
			cmpOp = expr.Eq
		case OpNe:
			cmpOp = expr.Ne
		case OpLt:
			cmpOp = expr.Lt
		case OpLe:
			cmpOp = expr.Le
		case OpGt:
			cmpOp = expr.Gt
		case OpGe:
			cmpOp = expr.Ge
		}
		var out []condRes
		for _, l := range ex.evalExpr(st, b.L) {
			if l.bad {
				out = append(out, condRes{st: l.st, bad: true, err: l.err})
				continue
			}
			for _, r := range ex.evalExpr(l.st, b.R) {
				if r.bad {
					out = append(out, condRes{st: r.st, bad: true, err: r.err})
					continue
				}
				out = append(out, condRes{st: r.st, cond: expr.NewCmp(cmpOp, l.val, r.val)})
			}
		}
		return out
	}
}

// concretize forks a state over every feasible value of a symbolic term.
// The enumeration is capped: an unconstrained 64-bit symbol cannot be
// concretized, which mirrors real engines giving up on wild pointers.
func (ex *executor) concretize(st *mstate, val expr.Lin) []evalRes {
	if _, isConst := val.ConstVal(); isConst {
		return []evalRes{{st: st, val: val}}
	}
	dom := st.ctx.Domain(val)
	if dom.Size() > 4096 {
		panic(fmt.Sprintf("minic: domain too large to concretize (%d values)", dom.Size()))
	}
	var out []evalRes
	for _, iv := range dom.Intervals() {
		for c := iv.Lo; ; c++ {
			forked := st.clone()
			if forked.ctx.Add(expr.NewCmp(expr.Eq, val, expr.Const(c, 64))) {
				out = append(out, evalRes{st: forked, val: expr.Const(c, 64)})
			}
			if c == iv.Hi {
				break
			}
		}
	}
	return out
}

// resolveIndex concretizes an array index, forking per feasible value — the
// naive treatment of symbolic pointers that blows up path counts, plus an
// out-of-bounds check path (how Klee proves memory safety).
func (ex *executor) resolveIndex(st *mstate, array string, idxE Expr) []idxRes {
	cells, ok := st.arrays[array]
	if !ok {
		panic("minic: undefined array " + array)
	}
	n := uint64(len(cells))
	var out []idxRes
	for _, ev := range ex.evalExpr(st, idxE) {
		if ev.bad {
			out = append(out, idxRes{st: ev.st, bad: true, err: ev.err})
			continue
		}
		if c, isConst := ev.val.ConstVal(); isConst {
			if c >= n {
				out = append(out, idxRes{st: ev.st, bad: true, err: MemError})
				continue
			}
			out = append(out, idxRes{st: ev.st, idx: int(c)})
			continue
		}
		// Out-of-bounds branch first: can the index escape the array?
		oob := ev.st.clone()
		if oob.ctx.Add(expr.NewCmp(expr.Ge, ev.val, expr.Const(n, 64))) && (oob.ctx.PendingOrs() == 0 || oob.ctx.Sat()) {
			out = append(out, idxRes{st: oob, bad: true, err: MemError})
		}
		// Fork per feasible in-bounds value.
		dom := ev.st.ctx.Domain(ev.val)
		for _, iv := range dom.Intervals() {
			for c := iv.Lo; c <= iv.Hi && c < n; c++ {
				forked := ev.st.clone()
				if forked.ctx.Add(expr.NewCmp(expr.Eq, ev.val, expr.Const(c, 64))) {
					out = append(out, idxRes{st: forked, idx: int(c)})
				}
				if c == iv.Hi {
					break
				}
			}
		}
	}
	return out
}
