package minic

import "symnet/internal/expr"

// TCP option kinds used by the options-parsing firewall code.
const (
	OptEOL       = 0
	OptNOP       = 1
	OptMSS       = 2
	OptWScale    = 3
	OptSackOK    = 4
	OptSack      = 5
	OptTimestamp = 8
	OptMD5       = 19
	OptMultipath = 30
)

// OptionAction is what the firewall does with an option kind.
type OptionAction uint8

// Firewall actions for an option kind (the `_options[opcode]` table of the
// paper's Fig. 1).
const (
	ActionStrip OptionAction = iota // replace with NOP padding
	ActionAllow
	ActionDrop // drop the whole packet
)

// OptionsConfig is the firewall's option policy.
type OptionsConfig struct {
	Allow []uint64
	Drop  []uint64
	// Everything else is stripped.
}

// DefaultASAConfig mirrors the CISCO ASA default configuration the paper
// analyzes: widely-used options are allowed (MSS, window scale, SACK
// variants, timestamp), the MD5 signature option drops the packet, and
// everything else — including multipath TCP — is stripped.
func DefaultASAConfig() OptionsConfig {
	return OptionsConfig{
		Allow: []uint64{OptMSS, OptWScale, OptSackOK, OptSack, OptTimestamp},
		Drop:  []uint64{OptMD5},
	}
}

// OptionsBufLen is the maximum TCP options length (the paper's "length
// parameter whose max value is 40").
const OptionsBufLen = 40

// OptionsProgram builds the Fig. 1 TCP-options parsing code as a mini-C
// program: a while loop over a symbolic `options` byte array with a
// concrete `length`, switching on the option kind and policing sizes.
//
//	while (length > 0) {
//	    opcode = options[ptr];
//	    switch (opcode) {
//	    case TCPOPT_EOL: return 1;
//	    case TCPOPT_NOP: length--; ptr++; continue;
//	    default:
//	        opsize = options[ptr+1];
//	        if (opsize < 2 || opsize > length) {
//	            for (i = 0; i < length; i++) options[ptr+i] = 1;
//	            length = 0; continue;
//	        }
//	        if (DROP(opcode)) return 0;
//	        if (!ALLOW(opcode))
//	            for (i = 0; i < opsize; i++) options[ptr+i] = 1;
//	        ptr += opsize; length -= opsize;
//	    }
//	}
func OptionsProgram(length int, cfg OptionsConfig) *Program {
	opcode := V("opcode")
	opsize := V("opsize")
	ptr := V("ptr")
	i := V("i")
	lengthV := V("length")

	classCond := func(kinds []uint64) Expr {
		if len(kinds) == 0 {
			// No kinds: impossible condition.
			return Eq(N(1), N(0))
		}
		c := Eq(opcode, N(kinds[0]))
		for _, k := range kinds[1:] {
			c = Or(c, Eq(opcode, N(k)))
		}
		return c
	}

	nopFill := func(bound Expr) []Stmt {
		return []Stmt{
			Assign{Name: "i", E: N(0)},
			While{Cond: Lt(i, bound), Body: []Stmt{
				Store{Array: "options", Idx: Add(ptr, i), E: N(1)},
				Assign{Name: "i", E: Add(i, N(1))},
			}},
		}
	}

	defaultArm := []Stmt{
		Assign{Name: "opsize", E: At("options", Add(ptr, N(1)))},
		If{
			Cond: Or(Lt(opsize, N(2)), Gt(opsize, lengthV)),
			Then: append(nopFill(lengthV),
				Assign{Name: "length", E: N(0)},
				Continue{},
			),
		},
		If{
			Cond: classCond(cfg.Drop),
			Then: []Stmt{Return{E: N(0)}},
		},
		If{
			Cond: classCond(cfg.Allow),
			Else: nopFill(opsize), // not allowed, not dropped: strip
		},
		Assign{Name: "ptr", E: Add(ptr, opsize)},
		Assign{Name: "length", E: Sub(lengthV, opsize)},
	}

	body := []Stmt{
		While{Cond: Gt(lengthV, N(0)), Body: []Stmt{
			Assign{Name: "opcode", E: At("options", ptr)},
			Switch{
				E: opcode,
				Cases: []SwitchCase{
					{Val: OptEOL, Body: []Stmt{Return{E: N(1)}}},
					{Val: OptNOP, Body: []Stmt{
						Assign{Name: "length", E: Sub(lengthV, N(1))},
						Assign{Name: "ptr", E: Add(ptr, N(1))},
						Continue{},
					}},
				},
				Default: defaultArm,
			},
		}},
		Return{E: N(1)},
	}

	return &Program{
		Arrays:         map[string]int{"options": OptionsBufLen},
		SymbolicArrays: []string{"options"},
		Vars:           map[string]uint64{"ptr": 0, "length": uint64(length), "opcode": 0, "opsize": 0, "i": 0},
		Body:           body,
	}
}

// ParseOptions concretely parses an options byte buffer into the list of
// option kinds present (skipping NOP padding, stopping at EOL or on invalid
// sizes) — the "iterate the options field afterwards" probe of §8.2.
func ParseOptions(buf []uint64, length int) []uint64 {
	var kinds []uint64
	ptr := 0
	for length > 0 && ptr < len(buf) {
		op := buf[ptr]
		switch op {
		case OptEOL:
			return kinds
		case OptNOP:
			ptr++
			length--
		default:
			if ptr+1 >= len(buf) {
				return kinds
			}
			size := int(buf[ptr+1])
			if size < 2 || size > length {
				return kinds
			}
			kinds = append(kinds, op)
			ptr += size
			length -= size
		}
	}
	return kinds
}

// ConcreteOptions extracts a concrete options buffer from a path outcome
// using a solver model.
func ConcreteOptions(o Outcome) ([]uint64, bool) {
	model, ok := o.Ctx.Model()
	if !ok {
		return nil, false
	}
	cells := o.Arrays["options"]
	out := make([]uint64, len(cells))
	for idx, c := range cells {
		if v, isConst := c.ConstVal(); isConst {
			out[idx] = v
			continue
		}
		out[idx] = (model[c.Sym] + c.Add) & expr.Mask(64) & 0xff
	}
	return out, true
}
