// Package minic implements a miniature C-like language and a deliberately
// *naive* symbolic executor over it — the stand-in for running Klee on
// middlebox C code (paper §2, Tables 1 and 4).
//
// The executor forks an execution state at every branch whose condition is
// symbolic, including loop tests and reads through symbolic array indexes
// (the behaviour that makes straight symbolic execution of the TCP-options
// parsing loop exponential in the options length). No SEFL-style tricks are
// applied: that is the point of the baseline.
package minic

import "fmt"

// Expr is a mini-C expression over 64-bit unsigned scalars and byte arrays.
type Expr interface {
	isExpr()
	String() string
}

// Const is an integer literal.
type Const struct{ V uint64 }

// Var reads a scalar variable.
type Var struct{ Name string }

// Index reads array[Idx]; a symbolic index forks per feasible value.
type Index struct {
	Array string
	Idx   Expr
}

// Bin is a binary arithmetic/comparison operation. Comparisons yield 0/1.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// BinOp enumerates mini-C binary operators.
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd // logical &&, short-circuit at statement level is not modeled
	OpOr  // logical ||
)

func (Const) isExpr() {}
func (Var) isExpr()   {}
func (Index) isExpr() {}
func (Bin) isExpr()   {}

func (c Const) String() string { return fmt.Sprintf("%d", c.V) }
func (v Var) String() string   { return v.Name }
func (i Index) String() string { return fmt.Sprintf("%s[%s]", i.Array, i.Idx) }
func (b Bin) String() string {
	ops := map[BinOp]string{
		OpAdd: "+", OpSub: "-", OpEq: "==", OpNe: "!=", OpLt: "<",
		OpLe: "<=", OpGt: ">", OpGe: ">=", OpAnd: "&&", OpOr: "||",
	}
	return fmt.Sprintf("(%s %s %s)", b.L, ops[b.Op], b.R)
}

// Convenience constructors.

// N builds an integer literal.
func N(v uint64) Expr { return Const{V: v} }

// V builds a variable reference.
func V(name string) Expr { return Var{Name: name} }

// At builds an array read.
func At(arr string, idx Expr) Expr { return Index{Array: arr, Idx: idx} }

// Add builds l + r.
func Add(l, r Expr) Expr { return Bin{Op: OpAdd, L: l, R: r} }

// Sub builds l - r.
func Sub(l, r Expr) Expr { return Bin{Op: OpSub, L: l, R: r} }

// Eq builds l == r.
func Eq(l, r Expr) Expr { return Bin{Op: OpEq, L: l, R: r} }

// Ne builds l != r.
func Ne(l, r Expr) Expr { return Bin{Op: OpNe, L: l, R: r} }

// Lt builds l < r.
func Lt(l, r Expr) Expr { return Bin{Op: OpLt, L: l, R: r} }

// Le builds l <= r.
func Le(l, r Expr) Expr { return Bin{Op: OpLe, L: l, R: r} }

// Gt builds l > r.
func Gt(l, r Expr) Expr { return Bin{Op: OpGt, L: l, R: r} }

// Ge builds l >= r.
func Ge(l, r Expr) Expr { return Bin{Op: OpGe, L: l, R: r} }

// Or builds l || r.
func Or(l, r Expr) Expr { return Bin{Op: OpOr, L: l, R: r} }

// And builds l && r.
func And(l, r Expr) Expr { return Bin{Op: OpAnd, L: l, R: r} }

// Stmt is a mini-C statement.
type Stmt interface {
	isStmt()
}

// Assign sets a scalar variable.
type Assign struct {
	Name string
	E    Expr
}

// Store writes array[Idx] = E.
type Store struct {
	Array string
	Idx   Expr
	E     Expr
}

// If branches on a (possibly symbolic) condition.
type If struct {
	Cond       Expr
	Then, Else []Stmt
}

// While loops on a (possibly symbolic) condition.
type While struct {
	Cond Expr
	Body []Stmt
}

// Switch dispatches on E. Cases are (value, body) pairs; Default runs when
// no case matches.
type Switch struct {
	E       Expr
	Cases   []SwitchCase
	Default []Stmt
}

// SwitchCase is one case arm. Fallthrough is not modeled; each arm is
// independent (the Fig. 1 code only uses break/return/continue arms).
type SwitchCase struct {
	Val  uint64
	Body []Stmt
}

// Return ends the program with a result value.
type Return struct{ E Expr }

// Break exits the innermost loop.
type Break struct{}

// Continue restarts the innermost loop.
type Continue struct{}

func (Assign) isStmt()   {}
func (Store) isStmt()    {}
func (If) isStmt()       {}
func (While) isStmt()    {}
func (Switch) isStmt()   {}
func (Return) isStmt()   {}
func (Break) isStmt()    {}
func (Continue) isStmt() {}

// Program is a mini-C program: statements plus array declarations.
type Program struct {
	// Arrays maps array names to lengths; contents start symbolic or are
	// set concrete via Init.
	Arrays map[string]int
	// Init holds concrete initial array contents (optional per array).
	Init map[string][]uint64
	// Vars holds concrete initial scalar values.
	Vars map[string]uint64
	// SymbolicArrays lists arrays whose cells start as fresh symbols.
	SymbolicArrays []string
	Body           []Stmt
}
