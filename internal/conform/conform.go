// Package conform implements the automated testing framework of §8.3: it
// compares a SEFL model against the "real implementation" — here, the
// concrete interpreters paired with every Click element. The procedure
// follows the paper's steps:
//
//  1. run a reachability test over the model with a symbolic TCP/IP packet;
//  2. solve each path's constraints into a concrete packet;
//  3. inject the packet into the running (concrete) pipeline;
//  4. compare the captured output against the symbolic prediction;
//  5. repeat for all paths, then
//  6. fuzz with random packets checked against the model's verdicts.
package conform

import (
	"fmt"
	"math/rand"

	"symnet/internal/click"
	"symnet/internal/core"
	"symnet/internal/expr"
	"symnet/internal/sefl"
)

// Harness couples a model network with its concrete twin.
type Harness struct {
	Net      *core.Network
	Concrete map[string]click.Concrete
	Inject   core.PortRef
	// Dictionary biases the random phase: with probability 1/2 a listed
	// field draws one of its candidate values instead of a uniform random
	// one. Keyed by template field name (e.g. "EtherDst"). Without this, a
	// 48-bit MAC filter would never be hit by uniform fuzzing — the same
	// reason ATPG derives test packets from the rule space.
	Dictionary map[string][]uint64
}

// Mismatch is one disagreement between model and implementation.
type Mismatch struct {
	PathID int
	Packet *click.Packet
	Reason string
}

func (m Mismatch) String() string {
	return fmt.Sprintf("path %d: %s (packet %s)", m.PathID, m.Reason, m.Packet)
}

// Report summarizes a conformance run.
type Report struct {
	PathsTested  int
	RandomTested int
	Mismatches   []Mismatch
	Loops        int
}

// OK reports whether model and implementation agreed everywhere.
func (r *Report) OK() bool { return len(r.Mismatches) == 0 }

// templField describes one template header field by absolute offset (the
// standard NewTCPPacket layout: L2@0, L3@112, L4@272, payload@432).
type templField struct {
	name string
	off  int64
	size int
	get  func(p *click.Packet) (uint64, bool)
	set  func(p *click.Packet, v uint64)
}

func tcpTemplate() []templField {
	return []templField{
		{"EtherDst", 0, 48, func(p *click.Packet) (uint64, bool) {
			if p.Ether == nil {
				return 0, false
			}
			return p.Ether.Dst, true
		}, func(p *click.Packet, v uint64) { p.Ether.Dst = v }},
		{"EtherSrc", 48, 48, func(p *click.Packet) (uint64, bool) {
			if p.Ether == nil {
				return 0, false
			}
			return p.Ether.Src, true
		}, func(p *click.Packet, v uint64) { p.Ether.Src = v }},
		{"EtherProto", 96, 16, func(p *click.Packet) (uint64, bool) {
			if p.Ether == nil {
				return 0, false
			}
			return p.Ether.Proto, true
		}, func(p *click.Packet, v uint64) { p.Ether.Proto = v }},
		{"IPLen", 112 + 16, 16, ipGet(func(h *click.IPHdr) uint64 { return h.Len }), ipSet(func(h *click.IPHdr, v uint64) { h.Len = v })},
		{"IPID", 112 + 32, 16, ipGet(func(h *click.IPHdr) uint64 { return h.ID }), ipSet(func(h *click.IPHdr, v uint64) { h.ID = v })},
		{"IPFlags", 112 + 48, 16, ipGet(func(h *click.IPHdr) uint64 { return h.Flags }), ipSet(func(h *click.IPHdr, v uint64) { h.Flags = v })},
		{"IPTTL", 112 + 64, 8, ipGet(func(h *click.IPHdr) uint64 { return h.TTL }), ipSet(func(h *click.IPHdr, v uint64) { h.TTL = v })},
		{"IPProto", 112 + 72, 8, ipGet(func(h *click.IPHdr) uint64 { return h.Proto }), ipSet(func(h *click.IPHdr, v uint64) { h.Proto = v })},
		{"IPChksum", 112 + 80, 16, ipGet(func(h *click.IPHdr) uint64 { return h.Chksum }), ipSet(func(h *click.IPHdr, v uint64) { h.Chksum = v })},
		{"IPSrc", 112 + 96, 32, ipGet(func(h *click.IPHdr) uint64 { return h.Src }), ipSet(func(h *click.IPHdr, v uint64) { h.Src = v })},
		{"IPDst", 112 + 128, 32, ipGet(func(h *click.IPHdr) uint64 { return h.Dst }), ipSet(func(h *click.IPHdr, v uint64) { h.Dst = v })},
		{"TcpSrc", 272 + 0, 16, tcpGet(func(h *click.TCPHdr) uint64 { return h.Src }), tcpSet(func(h *click.TCPHdr, v uint64) { h.Src = v })},
		{"TcpDst", 272 + 16, 16, tcpGet(func(h *click.TCPHdr) uint64 { return h.Dst }), tcpSet(func(h *click.TCPHdr, v uint64) { h.Dst = v })},
		{"TcpSeq", 272 + 32, 32, tcpGet(func(h *click.TCPHdr) uint64 { return h.Seq }), tcpSet(func(h *click.TCPHdr, v uint64) { h.Seq = v })},
		{"TcpAck", 272 + 64, 32, tcpGet(func(h *click.TCPHdr) uint64 { return h.Ack }), tcpSet(func(h *click.TCPHdr, v uint64) { h.Ack = v })},
		{"TcpFlags", 272 + 96, 16, tcpGet(func(h *click.TCPHdr) uint64 { return h.Flags }), tcpSet(func(h *click.TCPHdr, v uint64) { h.Flags = v })},
		{"TcpWin", 272 + 112, 16, tcpGet(func(h *click.TCPHdr) uint64 { return h.Win }), tcpSet(func(h *click.TCPHdr, v uint64) { h.Win = v })},
		{"TcpPayload", 432, 64, func(p *click.Packet) (uint64, bool) { return p.Payload, true }, func(p *click.Packet, v uint64) { p.Payload = v }},
	}
}

func ipGet(g func(*click.IPHdr) uint64) func(*click.Packet) (uint64, bool) {
	return func(p *click.Packet) (uint64, bool) {
		ip := p.InnerIP()
		if ip == nil {
			return 0, false
		}
		return g(ip), true
	}
}

func ipSet(s func(*click.IPHdr, uint64)) func(*click.Packet, uint64) {
	return func(p *click.Packet, v uint64) { s(p.InnerIP(), v) }
}

func tcpGet(g func(*click.TCPHdr) uint64) func(*click.Packet) (uint64, bool) {
	return func(p *click.Packet) (uint64, bool) {
		if p.TCP == nil {
			return 0, false
		}
		return g(p.TCP), true
	}
}

func tcpSet(s func(*click.TCPHdr, uint64)) func(*click.Packet, uint64) {
	return func(p *click.Packet, v uint64) { s(p.TCP, v) }
}

// Run executes the full conformance procedure with nRandom fuzz packets.
func Run(h Harness, nRandom int, seed int64) (*Report, error) {
	rep := &Report{}
	res, err := core.Run(h.Net, h.Inject, sefl.NewTCPPacket(), core.Options{Loop: core.LoopFull})
	if err != nil {
		return nil, err
	}
	rep.Loops = res.Stats.Looped
	fields := tcpTemplate()
	for _, p := range res.Paths {
		if p.Status != core.Delivered {
			continue
		}
		// Two concrete packets per path: a boundary model (minimum values —
		// catches wrap-around bugs like DecIPTTL) and a diversified model
		// (distinct values per field — catches aliasing bugs like the
		// ports-not-mirrored IPMirror model).
		boundary, ok := p.Ctx.Model()
		if !ok {
			rep.Mismatches = append(rep.Mismatches, Mismatch{PathID: p.ID, Reason: "delivered path has unsatisfiable constraints"})
			continue
		}
		diverse, _ := p.Ctx.ModelDiverse(uint64(p.ID))
		rep.PathsTested++
		for _, model := range []map[expr.SymID]uint64{boundary, diverse} {
			if model == nil {
				continue
			}
			pkt, err := buildPacket(p, model, fields)
			if err != nil {
				return nil, fmt.Errorf("conform: path %d: %w", p.ID, err)
			}
			h.testPacketAgainstPath(rep, p, model, pkt, fields)
		}
	}
	// Random phase (§8.3 step 6).
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < nRandom; i++ {
		pkt := randomPacket(rng)
		h.applyDictionary(rng, pkt, fields)
		rep.RandomTested++
		h.testRandomPacket(rep, res, pkt, fields)
	}
	return rep, nil
}

// applyDictionary overrides fields with dictionary candidates.
func (h Harness) applyDictionary(rng *rand.Rand, pkt *click.Packet, fields []templField) {
	if len(h.Dictionary) == 0 {
		return
	}
	for _, f := range fields {
		vals := h.Dictionary[f.name]
		if len(vals) == 0 || rng.Intn(2) == 0 {
			continue
		}
		f.set(pkt, vals[rng.Intn(len(vals))])
	}
}

// buildPacket reconstructs the injected packet of a path from a model: each
// template field's *first* recorded value evaluated under the assignment.
func buildPacket(p *core.Path, model map[expr.SymID]uint64, fields []templField) (*click.Packet, error) {
	pkt := &click.Packet{
		Ether: &click.EtherHdr{},
		IP:    []*click.IPHdr{{}},
		TCP:   &click.TCPHdr{},
	}
	for _, f := range fields {
		hist, err := p.Mem.HdrHistory(f.off, f.size)
		if err != nil || len(hist) == 0 {
			return nil, fmt.Errorf("field %s has no history: %v", f.name, err)
		}
		v, err := evalLin(hist[0], model)
		if err != nil {
			return nil, fmt.Errorf("field %s: %w", f.name, err)
		}
		f.set(pkt, v)
	}
	return pkt, nil
}

func evalLin(l expr.Lin, model map[expr.SymID]uint64) (uint64, error) {
	if v, ok := l.ConstVal(); ok {
		return v, nil
	}
	base, ok := model[l.Sym]
	if !ok {
		return 0, fmt.Errorf("model misses symbol s%d", l.Sym)
	}
	return (base + l.Add) & expr.Mask(l.Width), nil
}

// runConcrete pushes a packet through the concrete pipeline, following the
// same links as the model network. It returns the final resting port, the
// final packet, delivery flag, and whether a forwarding cycle was detected
// (hop budget exhausted).
func (h Harness) runConcrete(pkt *click.Packet) (core.PortRef, *click.Packet, bool, bool) {
	here := h.Inject
	cur := pkt
	for hops := 0; hops < 256; hops++ {
		impl, ok := h.Concrete[here.Elem]
		if !ok {
			// No concrete implementation (e.g. plain sink): the packet
			// rests at this input port.
			return here, cur, true, false
		}
		outPort, out, delivered := impl.Process(here.Port, cur)
		if !delivered {
			return here, nil, false, false
		}
		outRef := core.PortRef{Elem: here.Elem, Port: outPort, Out: true}
		next, linked := h.Net.Follow(outRef)
		if !linked {
			return outRef, out, true, false
		}
		here = next
		cur = out
	}
	return here, cur, false, true
}

// testPacketAgainstPath runs one solved packet through the concrete
// pipeline and compares endpoint and headers with the symbolic path.
func (h Harness) testPacketAgainstPath(rep *Report, p *core.Path, model map[expr.SymID]uint64, pkt *click.Packet, fields []templField) {
	finalRef, out, delivered, looped := h.runConcrete(pkt.Clone())
	if looped {
		rep.Mismatches = append(rep.Mismatches, Mismatch{PathID: p.ID, Packet: pkt, Reason: "concrete pipeline loops"})
		return
	}
	if !delivered {
		rep.Mismatches = append(rep.Mismatches, Mismatch{PathID: p.ID, Packet: pkt,
			Reason: "model delivers but implementation drops (tcpdump timeout)"})
		return
	}
	if want := p.Last(); want != finalRef {
		rep.Mismatches = append(rep.Mismatches, Mismatch{PathID: p.ID, Packet: pkt,
			Reason: fmt.Sprintf("model delivers at %s, implementation at %s", want, finalRef)})
		return
	}
	// Compare final header fields (§8.3 step 4: captured header values are
	// added as constraints and checked — here the solver assignment is the
	// evaluation).
	for _, f := range fields {
		got, ok := f.get(out)
		if !ok {
			continue // layer absent in the concrete packet
		}
		v, err := p.Mem.ReadHdr(f.off, f.size)
		if err != nil {
			continue // field gone in the model (encap/strip)
		}
		want, err := evalLin(v, model)
		if err != nil {
			continue
		}
		if got != want {
			rep.Mismatches = append(rep.Mismatches, Mismatch{PathID: p.ID, Packet: pkt,
				Reason: fmt.Sprintf("field %s: implementation %#x, model %#x", f.name, got, want)})
		}
	}
}

// testRandomPacket checks a fuzz packet: the implementation's verdict must
// match some feasible symbolic path (or a failed/dropped verdict).
func (h Harness) testRandomPacket(rep *Report, res *core.Result, pkt *click.Packet, fields []templField) {
	finalRef, _, delivered, looped := h.runConcrete(pkt.Clone())
	if looped {
		return // loops are reported by the symbolic side
	}
	// Find the symbolic path this packet takes: the delivered path whose
	// constraints admit the packet's initial field values.
	var match *core.Path
	for _, p := range res.Paths {
		if p.Status != core.Delivered {
			continue
		}
		if pathAdmits(p, pkt, fields) {
			match = p
			break
		}
	}
	switch {
	case match == nil && delivered:
		rep.Mismatches = append(rep.Mismatches, Mismatch{PathID: -1, Packet: pkt,
			Reason: fmt.Sprintf("implementation delivers at %s but no model path admits the packet", finalRef)})
	case match != nil && !delivered:
		rep.Mismatches = append(rep.Mismatches, Mismatch{PathID: match.ID, Packet: pkt,
			Reason: "model path admits packet but implementation drops"})
	case match != nil && delivered && match.Last() != finalRef:
		rep.Mismatches = append(rep.Mismatches, Mismatch{PathID: match.ID, Packet: pkt,
			Reason: fmt.Sprintf("implementation delivers at %s, model at %s", finalRef, match.Last())})
	}
}

// pathAdmits checks whether a path's constraints are consistent with the
// packet's initial field values.
func pathAdmits(p *core.Path, pkt *click.Packet, fields []templField) bool {
	ctx := p.Ctx.Clone()
	for _, f := range fields {
		v, ok := f.get(pkt)
		if !ok {
			continue
		}
		hist, err := p.Mem.HdrHistory(f.off, f.size)
		if err != nil || len(hist) == 0 {
			return false
		}
		if !ctx.Add(expr.NewCmp(expr.Eq, hist[0], expr.Const(v, hist[0].Width))) {
			return false
		}
	}
	return ctx.Sat()
}

// randomPacket draws a concrete TCP packet.
func randomPacket(rng *rand.Rand) *click.Packet {
	return &click.Packet{
		Ether: &click.EtherHdr{
			Dst:   rng.Uint64() & expr.Mask(48),
			Src:   rng.Uint64() & expr.Mask(48),
			Proto: sefl.EtherTypeIPv4,
		},
		IP: []*click.IPHdr{{
			Len:   20 + uint64(rng.Intn(1480)),
			ID:    uint64(rng.Intn(1 << 16)),
			TTL:   uint64(1 + rng.Intn(255)),
			Proto: sefl.ProtoTCP,
			Src:   uint64(rng.Uint32()),
			Dst:   uint64(rng.Uint32()),
		}},
		TCP: &click.TCPHdr{
			Src: uint64(rng.Intn(1 << 16)),
			Dst: uint64(rng.Intn(1 << 16)),
			Seq: uint64(rng.Uint32()),
			Ack: uint64(rng.Uint32()),
		},
		Payload: rng.Uint64(),
	}
}
