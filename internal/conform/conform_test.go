package conform

import (
	"strings"
	"testing"

	"symnet/internal/click"
	"symnet/internal/core"
	"symnet/internal/sefl"
)

// pipeline builds a harness for a single element followed by a sink.
func pipeline(t *testing.T, def click.Def) Harness {
	t.Helper()
	net := core.NewNetwork()
	_, conc := click.Instantiate(net, "dut", def)
	sink := net.AddElement("sink", "sink", 1, 0)
	sink.SetInCode(0, sefl.NoOp{})
	if def.NumOut > 0 {
		net.MustLink("dut", 0, "sink", 0)
	}
	return Harness{
		Net:      net,
		Concrete: map[string]click.Concrete{"dut": conc},
		Inject:   core.PortRef{Elem: "dut", Port: 0},
	}
}

func TestConformCorrectMirror(t *testing.T) {
	rep, err := Run(pipeline(t, click.IPMirror()), 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("correct IPMirror must conform: %v", rep.Mismatches)
	}
	if rep.PathsTested == 0 || rep.RandomTested != 50 {
		t.Fatalf("report %+v", rep)
	}
}

// TestConformCatchesIPMirrorBug reproduces §8.3: "Our model was incomplete:
// it only mirrored the IP addresses and not ports."
func TestConformCatchesIPMirrorBug(t *testing.T) {
	rep, err := Run(pipeline(t, click.IPMirrorBuggy()), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("buggy IPMirror model must be caught")
	}
	found := false
	for _, m := range rep.Mismatches {
		if strings.Contains(m.Reason, "TcpSrc") || strings.Contains(m.Reason, "TcpDst") {
			found = true
		}
	}
	if !found {
		t.Fatalf("mismatch must implicate the ports: %v", rep.Mismatches)
	}
}

// TestConformCatchesDecIPTTLBug reproduces §8.3's wrap-around bug: the
// buggy model forwards TTL-0 packets (as TTL 255); the implementation
// drops them.
func TestConformCatchesDecIPTTLBug(t *testing.T) {
	rep, err := Run(pipeline(t, click.DecIPTTLBuggy()), 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("buggy DecIPTTL model must be caught")
	}
}

func TestConformCorrectDecIPTTL(t *testing.T) {
	rep, err := Run(pipeline(t, click.DecIPTTL()), 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("correct DecIPTTL must conform: %v", rep.Mismatches)
	}
}

// TestConformCatchesHostEtherFilterBug reproduces §8.3: "we were wrongly
// checking the ethertype field". The buggy model rejects every packet the
// template can produce, so only the dictionary-biased random phase can
// expose the disagreement with the implementation.
func TestConformCatchesHostEtherFilterBug(t *testing.T) {
	h := pipeline(t, click.HostEtherFilterBuggy("00:aa:00:aa:00:aa"))
	h.Dictionary = map[string][]uint64{
		"EtherDst": {sefl.MACToNumber("00:aa:00:aa:00:aa")},
	}
	rep, err := Run(h, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("buggy HostEtherFilter model must be caught")
	}
}

func TestConformCorrectHostEtherFilter(t *testing.T) {
	rep, err := Run(pipeline(t, click.HostEtherFilter("00:aa:00:aa:00:aa")), 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("correct HostEtherFilter must conform: %v", rep.Mismatches)
	}
}

// TestConformIPClassifierSolverZeros reproduces the §8.3 IPClassifier
// finding: the solver generates 0 values for unconstrained fields (e.g.
// port 0), which real implementations may drop. Our classifier treats port
// 0 as a normal value, so the *unconstrained* model conforms; the test
// variant with a port-0-dropping implementation must be caught.
func TestConformIPClassifierSolverZeros(t *testing.T) {
	filters := []click.Filter{{Proto: click.U(6)}}
	def := click.IPClassifier(filters)
	// Wrap the concrete side with a port-0 dropper (the real Click
	// behaviour the paper hit).
	inner := def.NewConcrete
	def.NewConcrete = func() click.Concrete {
		c := inner()
		return click.ConcreteFunc(func(in int, p *click.Packet) (int, *click.Packet, bool) {
			if p.TCP != nil && (p.TCP.Src == 0 || p.TCP.Dst == 0) {
				return 0, nil, false
			}
			return c.Process(in, p)
		})
	}
	rep, err := Run(pipeline(t, def), 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("port-0 dropping implementation must disagree with the unconstrained model")
	}
	// The fix from the paper: constrain the symbolic packet to valid
	// addresses and ports. With valid-port constraints the solver no longer
	// produces port 0 and conformance passes.
	h := pipeline(t, def)
	net := core.NewNetwork()
	_, conc := click.Instantiate(net, "dut", def)
	sink := net.AddElement("sink", "sink", 1, 0)
	sink.SetInCode(0, sefl.NoOp{})
	net.MustLink("dut", 0, "sink", 0)
	h = Harness{Net: net, Concrete: map[string]click.Concrete{"dut": conc}, Inject: core.PortRef{Elem: "dut", Port: 0}}
	_ = h
	// Constraining happens via a wrapper element in front; covered by the
	// department-network experiments. Here we only assert detection.
}
