package symnet

import (
	"context"
	"fmt"
	"io"

	"symnet/internal/churn"
	"symnet/internal/core"
	"symnet/internal/dist"
	"symnet/internal/models"
	"symnet/internal/sched"
	"symnet/internal/sefl"
	"symnet/internal/tables"
	"symnet/internal/verify"
)

// Forwarding-table types for ServeConfig. See internal/tables.
type (
	// FIB is a router's forwarding table (longest-prefix-match routes).
	FIB = tables.FIB
	// Route is one FIB entry: Prefix/Len forwarded out Port.
	Route = tables.Route
	// MACTable is a switch's MAC learning table.
	MACTable = tables.MACTable
	// MACEntry is one MAC table entry: MAC forwarded out Port.
	MACEntry = tables.MACEntry
)

// Verification report types. See internal/verify.
type (
	// AllPairsReport is the sources x targets reachability matrix.
	AllPairsReport = verify.AllPairsReport
	// CellDelta is one report cell that changed between two versions.
	CellDelta = verify.CellDelta
)

// Churn serving types. See internal/churn for full documentation.
type (
	// Delta is one forwarding-rule update (FIB route or MAC entry
	// insert/delete/modify). It doubles as the symnetd wire format.
	Delta = churn.Delta
	// DeltaStatus is the per-delta outcome of an Apply.
	DeltaStatus = churn.DeltaStatus
	// ApplyReport reports one Apply call's absorption: the (possibly
	// coalesced) batch it rode in plus per-delta statuses.
	ApplyReport = churn.SubmitResult
	// BatchReport describes one absorbed batch: reconcile tier, dirty-set
	// size, cells re-verified, reachability transitions, elapsed time.
	BatchReport = churn.BatchResult
	// PublishedReport is an immutable versioned report snapshot.
	PublishedReport = churn.PublishedReport
	// VersionEvent is one published version plus its cell transitions.
	VersionEvent = churn.VersionEvent
	// Transition is one reachability-cell flip between versions.
	Transition = churn.Transition
	// Subscription is a live feed of VersionEvents (see Serving.Watch).
	Subscription = churn.Subscription
	// ServingState is a serializable snapshot of resident tables + version.
	ServingState = churn.State
)

// Delta operations.
const (
	OpInsert = churn.OpInsert
	OpDelete = churn.OpDelete
	OpModify = churn.OpModify
)

// ReadServingState deserializes a snapshot written by ServingState.WriteTo.
func ReadServingState(r io.Reader) (*ServingState, error) { return churn.ReadState(r) }

// DecodeDeltas reads a JSON-lines delta stream (the symgen/symnetd format).
func DecodeDeltas(r io.Reader) ([]Delta, error) { return churn.DecodeDeltas(r) }

// EncodeDeltas writes deltas as JSON lines.
func EncodeDeltas(w io.Writer, ds []Delta) error { return churn.EncodeDeltas(w, ds) }

// Session is a compiled network plus the run configuration shared by every
// query against it: the options, the worker budget, and a cross-run
// satisfiability memo. Build one with Compile, then issue queries with Run,
// RunBatch and AllPairs, or start a churn-serving handle with Serve.
//
// Worker semantics (Options.Workers) are uniform across the session:
//
//	> 1  — parallel exploration/fan-out with that many workers
//	  0,1 — sequential (the zero value never spawns goroutines)
//	< 0  — all cores
//
// Results are byte-identical at every worker count.
type Session struct {
	net  *Network
	opts Options
}

// Compile validates the network, warms every element's compiled programs
// (so first-query latency excludes compilation), and pins the session's
// run options. A nil Options.SatMemo is replaced with a fresh session-held
// memo, so repeated queries share solver verdicts by default.
func Compile(net *Network, opts Options) (*Session, error) {
	if net == nil {
		return nil, fmt.Errorf("symnet: Compile on nil network")
	}
	if opts.SatMemo == nil {
		opts.SatMemo = NewSatMemo()
	}
	for _, e := range net.Elements() {
		e.Programs() // warm the lazily-compiled per-port programs
	}
	return &Session{net: net, opts: opts}, nil
}

// Network returns the session's network. Mutating it while a Serving handle
// is live is a data race; route changes through Serving.Apply instead.
func (s *Session) Network() *Network { return s.net }

// Options returns the session's pinned run options.
func (s *Session) Options() Options { return s.opts }

// Run injects a symbolic packet built by init at an input port and explores
// every feasible path, honoring the session's worker semantics.
func (s *Session) Run(inject PortRef, init sefl.Instr) (*Result, error) {
	if w := s.opts.Workers; w > 1 || w < 0 {
		return sched.Run(s.net, inject, init, s.opts, w)
	}
	return core.Run(s.net, inject, init, s.opts)
}

// RunBatch runs independent queries against the network, fanning jobs
// across the session's worker pool (Workers <= 0 selects all cores, as in
// the package-level RunBatch). Jobs with a nil Opts.SatMemo share the
// session memo; results are identical with or without sharing.
func (s *Session) RunBatch(jobs []BatchJob) []BatchResult {
	shared := make([]BatchJob, len(jobs))
	for i, j := range jobs {
		if j.Opts.SatMemo == nil {
			j.Opts.SatMemo = s.opts.SatMemo
		}
		shared[i] = j
	}
	return sched.RunBatch(s.net, shared, s.opts.Workers)
}

// AllPairs computes the sources x targets reachability matrix under the
// session options (Workers <= 0 selects all cores).
func (s *Session) AllPairs(sources []PortRef, packet sefl.Instr, targets []string) (*AllPairsReport, error) {
	return verify.AllPairsReachability(s.net, sources, packet, targets, s.opts, s.opts.Workers)
}

// ServeConfig describes a resident churn-serving workload: the monitored
// all-pairs query plus the authoritative forwarding tables of the elements
// that will receive deltas. Serve (re)models each listed element from its
// table — Egress style, the patchable tier — so the caller only builds the
// topology (AddElement + Link) and hands over the tables.
type ServeConfig struct {
	// Sources and Targets define the monitored reachability matrix.
	Sources []PortRef
	Targets []string
	// Packet builds the injected symbolic packet (e.g. sefl.NewTCPPacket()).
	Packet sefl.Instr
	// Routers and Switches map element names to their authoritative tables.
	Routers  map[string]FIB
	Switches map[string]MACTable
	// QueueDepth bounds the intake queue (default 256); a full queue
	// back-pressures Apply.
	QueueDepth int
	// MaxBatch caps how many deltas one absorption pass coalesces
	// (default 128).
	MaxBatch int
	// DistProcs > 0 shards every verification pass (the initial all-pairs run
	// and each churn re-verification) across that many persistent local
	// worker subprocesses instead of the in-process scheduler. The pool
	// outlives batches: workers keep the compiled network installed, and rule
	// churn reaches them as per-port program deltas. Published observables
	// are byte-identical to in-process serving.
	DistProcs int
	// DistWorkers lists resident TCP worker addresses (host:port of
	// `symworker -listen` processes, possibly on other machines). When
	// non-empty it selects the fleet and DistProcs is ignored.
	DistWorkers []string
}

// Serving is a live churn-serving handle: a resident verification of the
// configured all-pairs query that absorbs rule deltas incrementally and
// publishes versioned report snapshots. Reads (Current, Watch,
// TransitionsSince) are lock-free; all mutations funnel through Apply's
// single-writer absorber, which coalesces concurrent submissions. Every
// published report is byte-identical to a from-scratch verification of the
// same rules (pinned by the differential tests in internal/churn).
type Serving struct {
	svc  *churn.Service
	res  *churn.Resident
	pool *dist.Pool
}

// Serve models the configured elements from their tables, runs the initial
// all-pairs verification (published as version 1), and starts the absorber.
// Close the handle when done.
func (s *Session) Serve(cfg ServeConfig) (*Serving, error) {
	for name, fib := range cfg.Routers {
		e, ok := s.net.Element(name)
		if !ok {
			return nil, fmt.Errorf("symnet: serve: unknown router element %q", name)
		}
		if err := models.Router(e, fib, models.Egress); err != nil {
			return nil, fmt.Errorf("symnet: serve: model router %q: %w", name, err)
		}
	}
	for name, tbl := range cfg.Switches {
		e, ok := s.net.Element(name)
		if !ok {
			return nil, fmt.Errorf("symnet: serve: unknown switch element %q", name)
		}
		if err := models.Switch(e, tbl, models.Egress); err != nil {
			return nil, fmt.Errorf("symnet: serve: model switch %q: %w", name, err)
		}
	}
	var pool *dist.Pool
	var runner churn.BatchRunner
	if cfg.DistProcs > 0 || len(cfg.DistWorkers) > 0 {
		var err error
		pool, err = dist.NewPool(dist.Config{
			Procs:          cfg.DistProcs,
			Workers:        cfg.DistWorkers,
			WorkersPerProc: s.opts.Workers,
			ShareSat:       true,
			Obs:            s.opts.Obs,
		})
		if err != nil {
			return nil, fmt.Errorf("symnet: serve: %w", err)
		}
		runner = pool
	}
	svc := churn.NewService(churn.Config{
		Net:     s.net,
		Sources: cfg.Sources,
		Targets: cfg.Targets,
		Packet:  cfg.Packet,
		Opts:    s.opts,
		Workers: s.opts.Workers,
		Runner:  runner,
	})
	for name, fib := range cfg.Routers {
		svc.RegisterRouter(name, fib)
	}
	for name, tbl := range cfg.Switches {
		svc.RegisterSwitch(name, tbl)
	}
	if err := svc.Init(); err != nil {
		if pool != nil {
			pool.Close()
		}
		return nil, fmt.Errorf("symnet: serve: initial verification: %w", err)
	}
	res := churn.NewResident(svc, churn.ResidentConfig{
		QueueDepth: cfg.QueueDepth,
		MaxBatch:   cfg.MaxBatch,
	})
	if err := res.Start(); err != nil {
		if pool != nil {
			pool.Close()
		}
		return nil, err
	}
	return &Serving{svc: svc, res: res, pool: pool}, nil
}

// Apply submits deltas for absorption and blocks until their pass commits
// (or ctx is done). Deltas are staged in order; an inapplicable delta is
// rejected in its DeltaStatus and the rest still applies. Concurrent Apply
// calls coalesce into one absorption pass.
func (v *Serving) Apply(ctx context.Context, ds ...Delta) (*ApplyReport, error) {
	return v.res.Submit(ctx, ds)
}

// Current returns the latest published report snapshot, lock-free.
func (v *Serving) Current() *PublishedReport { return v.res.Current() }

// Version returns the latest published version number.
func (v *Serving) Version() uint64 { return v.svc.Version() }

// Watch subscribes to published versions. Events carry the reachability
// transitions vs the previous version; a subscriber that falls more than
// buffer events behind is dropped (its channel closes) and must re-sync
// via Current or TransitionsSince.
func (v *Serving) Watch(buffer int) *Subscription { return v.res.Watch(buffer) }

// TransitionsSince replays retained events with Version > since, oldest
// first. A false second return means since is beyond the replay ring and
// the caller must re-read Current instead.
func (v *Serving) TransitionsSince(since uint64) ([]VersionEvent, bool) {
	return v.res.TransitionsSince(since)
}

// Export captures a consistent snapshot of the resident tables + version,
// serialized with absorption (never a half-applied batch).
func (v *Serving) Export(ctx context.Context) (*ServingState, error) {
	return v.res.Export(ctx)
}

// Restore replaces the resident tables with the snapshot's and re-runs the
// full verification, publishing the result as the next version (versions
// stay monotone even when the snapshot is older).
func (v *Serving) Restore(ctx context.Context, st *ServingState) (*PublishedReport, error) {
	return v.res.Restore(ctx, st)
}

// Barrier waits until every Apply queued before it has been absorbed.
func (v *Serving) Barrier(ctx context.Context) error { return v.res.Barrier(ctx) }

// Close stops the absorber, closes watch subscriptions, and dismisses the
// distributed worker pool when one is configured. Queued Apply calls are
// failed.
func (v *Serving) Close() {
	v.res.Close()
	if v.pool != nil {
		v.pool.Close()
	}
}
