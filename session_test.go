package symnet

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"symnet/internal/sefl"
)

// The serving fixture: a switch fronting three host segments and an
// upstream router with three networks behind it (the same shape as the
// churn differential fixture, built through the facade only — Serve
// installs the router/switch models from the tables).
func sessionFIB() FIB {
	return FIB{
		{Prefix: 0x0A000000, Len: 8, Port: 0},  // 10.0.0.0/8
		{Prefix: 0x0A010000, Len: 16, Port: 1}, // 10.1.0.0/16
		{Prefix: 0x0A010200, Len: 24, Port: 2}, // 10.1.2.0/24
		{Prefix: 0x14000000, Len: 8, Port: 1},  // 20.0.0.0/8
		{Prefix: 0x1E000000, Len: 8, Port: 2},  // 30.0.0.0/8
		{Prefix: 0x28000000, Len: 8, Port: 0},  // 40.0.0.0/8
		{Prefix: 0x32000000, Len: 8, Port: 1},  // 50.0.0.0/8
		{Prefix: 0, Len: 0, Port: 0},           // default
	}
}

func sessionMACs() MACTable {
	t := MACTable{{MAC: 0x02AA00000001, Port: 0}}
	for p := 1; p <= 3; p++ {
		for h := 0; h < 4; h++ {
			t = append(t, MACEntry{MAC: uint64(0x020000000000) | uint64(p)<<8 | uint64(h), Port: p})
		}
	}
	return t
}

func buildSessionNet(t *testing.T) *Network {
	t.Helper()
	net := NewNetwork()
	net.AddElement("sw", "switch", 4, 4)
	net.AddElement("rt", "router", 1, 3)
	hosts := net.AddElement("hosts", "sink", 3, 0)
	hosts.SetInCode(WildcardPort, sefl.NoOp{})
	net.MustLink("sw", 0, "rt", 0)
	for p := 1; p <= 3; p++ {
		net.MustLink("sw", p, "hosts", p-1)
	}
	for p := 0; p < 3; p++ {
		sink := net.AddElement(fmt.Sprintf("net%d", p), "sink", 1, 0)
		sink.SetInCode(0, sefl.NoOp{})
		net.MustLink("rt", p, sink.Name, 0)
	}
	return net
}

func sessionServe(t *testing.T, sess *Session) *Serving {
	t.Helper()
	srv, err := sess.Serve(ServeConfig{
		Sources:  []PortRef{{Elem: "sw", Port: 1}, {Elem: "sw", Port: 2}},
		Targets:  []string{"hosts", "net0", "net1", "net2"},
		Packet:   sefl.NewTCPPacket(),
		Routers:  map[string]FIB{"rt": sessionFIB()},
		Switches: map[string]MACTable{"sw": sessionMACs()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func compareResults(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Stats != want.Stats {
		t.Fatalf("%s: stats mismatch:\n got %+v\nwant %+v", label, got.Stats, want.Stats)
	}
	if len(got.Paths) != len(want.Paths) {
		t.Fatalf("%s: path count %d != %d", label, len(got.Paths), len(want.Paths))
	}
	for i := range want.Paths {
		g, w := got.Paths[i], want.Paths[i]
		if g.ID != w.ID || g.Status != w.Status || g.FailMsg != w.FailMsg {
			t.Fatalf("%s: path %d header mismatch: {%d %v %q} != {%d %v %q}",
				label, i, g.ID, g.Status, g.FailMsg, w.ID, w.Status, w.FailMsg)
		}
		if !reflect.DeepEqual(g.Trace, w.Trace) {
			t.Fatalf("%s: path %d trace mismatch", label, i)
		}
		if !reflect.DeepEqual(g.History(), w.History()) {
			t.Fatalf("%s: path %d history mismatch", label, i)
		}
	}
}

func compareAllPairs(t *testing.T, label string, got, want *AllPairsReport) {
	t.Helper()
	if !reflect.DeepEqual(got.Reachable, want.Reachable) {
		t.Fatalf("%s: reachability mismatch:\n got %v\nwant %v", label, got.Reachable, want.Reachable)
	}
	if !reflect.DeepEqual(got.PathCount, want.PathCount) {
		t.Fatalf("%s: path count mismatch:\n got %v\nwant %v", label, got.PathCount, want.PathCount)
	}
	for i := range want.Results {
		compareResults(t, fmt.Sprintf("%s: source %d", label, i), got.Results[i], want.Results[i])
	}
}

// TestSessionShimIdentity pins the deprecated shims against the session
// API: for every worker setting, Session.Run and Session.RunBatch must be
// byte-identical to the package-level Run/RunParallel/RunBatch.
func TestSessionShimIdentity(t *testing.T) {
	build := func() *Network {
		net := NewNetwork()
		fw := net.AddElement("fw", "firewall", 1, 2)
		fw.SetInCode(WildcardPort, sefl.Seq(
			sefl.If{
				C:    sefl.Eq(sefl.Ref{LV: sefl.TcpDst}, sefl.C(80)),
				Then: sefl.Forward{Port: 0},
				Else: sefl.Forward{Port: 1},
			},
		))
		web := net.AddElement("web", "sink", 1, 0)
		web.SetInCode(0, sefl.NoOp{})
		other := net.AddElement("other", "sink", 1, 0)
		other.SetInCode(0, sefl.NoOp{})
		net.MustLink("fw", 0, "web", 0)
		net.MustLink("fw", 1, "other", 0)
		return net
	}
	inject := PortRef{Elem: "fw", Port: 0}

	for _, w := range []int{0, 1, 2, -1} {
		opts := Options{Trace: true, Workers: w}
		sess, err := Compile(build(), opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sess.Run(inject, sefl.NewTCPPacket())
		if err != nil {
			t.Fatal(err)
		}
		var want *Result
		if w < 0 {
			want, err = RunParallel(build(), inject, sefl.NewTCPPacket(), opts)
		} else {
			want, err = Run(build(), inject, sefl.NewTCPPacket(), opts)
		}
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, fmt.Sprintf("workers=%d", w), got, want)
	}

	// RunBatch shim vs Session.RunBatch, same jobs.
	jobs := []BatchJob{
		{Name: "web", Inject: inject, Packet: sefl.NewTCPPacket(), Opts: Options{Trace: true}},
		{Name: "dup", Inject: inject, Packet: sefl.NewTCPPacket(), Opts: Options{Trace: true}},
	}
	sess, err := Compile(build(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := sess.RunBatch(jobs)
	want := RunBatch(build(), jobs, 2)
	if len(got) != len(want) {
		t.Fatalf("batch result count %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Err != nil || want[i].Err != nil {
			t.Fatalf("job %d errors: %v / %v", i, got[i].Err, want[i].Err)
		}
		compareResults(t, fmt.Sprintf("job %d", i), got[i].Result, want[i].Result)
	}
}

// TestSessionServeChurn drives the full serving surface through the facade:
// Serve models the elements and publishes version 1 equal to a direct
// AllPairs; Apply absorbs deltas with per-delta statuses; Watch streams the
// version; snapshot export/restore round-trips; and the post-churn resident
// report is byte-identical to a from-scratch serving of the mutated tables.
func TestSessionServeChurn(t *testing.T) {
	sources := []PortRef{{Elem: "sw", Port: 1}, {Elem: "sw", Port: 2}}
	targets := []string{"hosts", "net0", "net1", "net2"}
	sess, err := Compile(buildSessionNet(t), Options{Trace: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := sessionServe(t, sess)
	if v := srv.Version(); v != 1 {
		t.Fatalf("version after Serve = %d, want 1", v)
	}
	direct, err := sess.AllPairs(sources, sefl.NewTCPPacket(), targets)
	if err != nil {
		t.Fatal(err)
	}
	compareAllPairs(t, "Serve init vs AllPairs", srv.Current().Report, direct)

	sub := srv.Watch(8)
	ctx := context.Background()

	// Mixed Apply: one applicable insert, one delete of a missing route.
	rep, err := srv.Apply(ctx,
		Delta{Elem: "rt", Op: OpInsert, Prefix: "99.0.0.0/8", Port: 1},
		Delta{Elem: "rt", Op: OpDelete, Prefix: "1.2.3.0/24"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied != 1 || rep.Batch == nil || rep.Batch.Version != 2 {
		t.Fatalf("mixed apply: %+v", rep)
	}
	if !rep.Statuses[0].Applied || rep.Statuses[1].Applied || rep.Statuses[1].Err == "" {
		t.Fatalf("mixed apply statuses: %+v", rep.Statuses)
	}
	select {
	case ev := <-sub.Events:
		if ev.Version != 2 {
			t.Fatalf("watch event version %d, want 2", ev.Version)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch event for version 2 never arrived")
	}
	if evs, ok := srv.TransitionsSince(1); !ok || len(evs) != 1 || evs[0].Version != 2 {
		t.Fatalf("TransitionsSince(1) = %v, %v", evs, ok)
	}
	sub.Cancel()

	// Snapshot round-trip through the serialized form.
	st, err := srv.Export(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	st2, err := ReadServingState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	v2Report := srv.Current().Report
	if _, err := srv.Apply(ctx, Delta{Elem: "rt", Op: OpDelete, Prefix: "10.1.2.0/24"}); err != nil {
		t.Fatal(err)
	}
	pub, err := srv.Restore(ctx, st2)
	if err != nil {
		t.Fatal(err)
	}
	if pub.Version != 4 {
		t.Fatalf("version after restore = %d, want 4 (monotone past the delete)", pub.Version)
	}
	compareAllPairs(t, "restore vs exported version", pub.Report, v2Report)

	// The resident report after churn is byte-identical to a from-scratch
	// serving of the mutated tables (the facade-level differential pin).
	sess2, err := Compile(buildSessionNet(t), Options{Trace: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := sess2.Serve(ServeConfig{
		Sources: sources, Targets: targets, Packet: sefl.NewTCPPacket(),
		Routers:  map[string]FIB{"rt": append(sessionFIB(), Route{Prefix: 0x63000000, Len: 8, Port: 1})},
		Switches: map[string]MACTable{"sw": sessionMACs()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	compareAllPairs(t, "post-churn vs from-scratch", srv.Current().Report, srv2.Current().Report)
}

// TestSessionServeErrors pins the facade's error surface.
func TestSessionServeErrors(t *testing.T) {
	if _, err := Compile(nil, Options{}); err == nil {
		t.Fatal("Compile(nil) succeeded")
	}
	sess, err := Compile(buildSessionNet(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Serve(ServeConfig{
		Sources: []PortRef{{Elem: "sw", Port: 1}},
		Targets: []string{"hosts"},
		Packet:  sefl.NewTCPPacket(),
		Routers: map[string]FIB{"nosuch": sessionFIB()},
	}); err == nil {
		t.Fatal("Serve with unknown router element succeeded")
	}
}
